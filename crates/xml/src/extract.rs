//! Corpus extraction: XML documents → per-element child-name sequences.
//!
//! DTD inference reduces to learning one regular expression per element
//! name from the multiset of strings occurring below that element (§1.2);
//! the [`Corpus`] accumulates exactly those words, along with the text and
//! attribute samples needed for the XSD datatype heuristics of §9.

use crate::parser::{XmlError, XmlEvent, XmlPullParser};
use crate::samples::SampleBag;
use dtdinfer_regex::alphabet::{Alphabet, Sym, Word};
use dtdinfer_regex::multiset::WordBag;
use std::collections::BTreeMap;

/// Everything observed about one element name across the corpus.
#[derive(Debug, Clone, Default)]
pub struct ElementFacts {
    /// The child-name sequences observed under the element, as a counted
    /// multiset: one `(word, count)` entry per *distinct* sequence. Real
    /// corpora repeat shapes heavily, so this is far smaller than one
    /// word per occurrence and lets the learners absorb each distinct
    /// word once with its multiplicity.
    pub child_sequences: WordBag,
    /// Non-whitespace text chunks observed directly under the element
    /// (bounded reservoir; exact total and datatype mask).
    pub text_samples: SampleBag,
    /// Attribute name → sampled values (bounded reservoir per attribute).
    pub attributes: BTreeMap<String, SampleBag>,
    /// Total number of occurrences.
    pub occurrences: u64,
}

impl ElementFacts {
    /// Whether the element ever had element children.
    pub fn has_element_children(&self) -> bool {
        self.child_sequences.words().any(|w| !w.is_empty())
    }

    /// Whether the element ever had character data.
    pub fn has_text(&self) -> bool {
        !self.text_samples.is_empty()
    }
}

/// A corpus of XML documents reduced to inference-ready statistics.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// Interned element names.
    pub alphabet: Alphabet,
    /// Facts per element.
    pub elements: BTreeMap<Sym, ElementFacts>,
    /// Root elements observed, with counts (document order of first root
    /// wins ties in [`Corpus::root`]).
    pub roots: BTreeMap<Sym, u64>,
    /// Number of documents absorbed.
    pub num_documents: u64,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses one document and folds its statistics in, attributing any
    /// parse error to `source` (usually the file path).
    pub fn add_document_from(&mut self, doc: &str, source: &str) -> Result<(), XmlError> {
        self.add_document(doc).map_err(|e| e.with_source(source))
    }

    /// Parses one document and folds its statistics in.
    pub fn add_document(&mut self, doc: &str) -> Result<(), XmlError> {
        let _span = dtdinfer_obs::span("xml.extract_document");
        // Per-document tallies, flushed to the metrics registry at the end
        // (one registry lock per document instead of one per event).
        let (mut n_elems, mut n_attrs, mut n_text) = (0u64, 0u64, 0u64);
        let mut parser = XmlPullParser::new(doc);
        // Stack of (element symbol, children-so-far).
        let mut stack: Vec<(Sym, Word)> = Vec::new();
        let mut seen_root = false;
        while let Some(event) = parser
            .next()
            .inspect_err(|_| dtdinfer_obs::count("xml.parse_errors", 1))?
        {
            match event {
                XmlEvent::StartElement {
                    name, attributes, ..
                } => {
                    n_elems += 1;
                    n_attrs += attributes.len() as u64;
                    let sym = self.alphabet.intern(name);
                    let facts = self.elements.entry(sym).or_default();
                    facts.occurrences += 1;
                    for (attr, value) in &attributes {
                        // Allocate the attribute name only the first time
                        // it is seen on this element.
                        if let Some(bag) = facts.attributes.get_mut(*attr) {
                            bag.insert(value);
                        } else {
                            facts
                                .attributes
                                .entry((*attr).to_owned())
                                .or_default()
                                .insert(value);
                        }
                    }
                    if let Some((_, children)) = stack.last_mut() {
                        children.push(sym);
                    } else if !seen_root {
                        seen_root = true;
                        *self.roots.entry(sym).or_insert(0) += 1;
                    }
                    stack.push((sym, Word::new()));
                }
                XmlEvent::EndElement { .. } => {
                    let (sym, children) = stack.pop().expect("parser checks balance");
                    self.elements
                        .entry(sym)
                        .or_default()
                        .child_sequences
                        .insert(children);
                }
                XmlEvent::Text(text) => {
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        n_text += 1;
                        if let Some(&mut (sym, _)) = stack.last_mut() {
                            self.elements
                                .entry(sym)
                                .or_default()
                                .text_samples
                                .insert(trimmed);
                        }
                    }
                }
                XmlEvent::Comment(_)
                | XmlEvent::ProcessingInstruction(_)
                | XmlEvent::Doctype(_) => {}
            }
        }
        self.num_documents += 1;
        dtdinfer_obs::count("xml.documents", 1);
        dtdinfer_obs::count("xml.elements", n_elems);
        dtdinfer_obs::count("xml.attributes", n_attrs);
        dtdinfer_obs::count("xml.text_chunks", n_text);
        Ok(())
    }

    /// Adds many documents, stopping at the first parse error.
    pub fn add_documents<'a, I: IntoIterator<Item = &'a str>>(
        &mut self,
        docs: I,
    ) -> Result<(), XmlError> {
        for d in docs {
            self.add_document(d)?;
        }
        Ok(())
    }

    /// The dominant root element (most documents), if any. Ties go to the
    /// lexicographically smallest name, so the choice does not depend on
    /// document arrival order.
    pub fn root(&self) -> Option<Sym> {
        self.roots
            .iter()
            .max_by(|a, b| {
                a.1.cmp(b.1)
                    .then_with(|| self.alphabet.name(*b.0).cmp(self.alphabet.name(*a.0)))
            })
            .map(|(&sym, _)| sym)
    }

    /// A copy of the corpus re-interned over a name-sorted alphabet, so
    /// symbol order equals lexicographic name order. Every learner in this
    /// workspace breaks ties in symbol order, so inference over the
    /// canonical corpus is independent of document arrival order.
    pub fn canonicalized(&self) -> Corpus {
        let mut names: Vec<&str> = self.alphabet.entries().map(|(_, n)| n).collect();
        if names.windows(2).all(|w| w[0] < w[1]) {
            return self.clone();
        }
        names.sort_unstable();
        let alphabet = Alphabet::from_names(&names);
        let map = |s: Sym| alphabet.get(self.alphabet.name(s)).expect("same name set");
        let elements = self
            .elements
            .iter()
            .map(|(&sym, facts)| {
                let mut facts = facts.clone();
                facts.child_sequences = facts.child_sequences.map_symbols(map);
                (map(sym), facts)
            })
            .collect();
        let roots = self.roots.iter().map(|(&s, &c)| (map(s), c)).collect();
        Corpus {
            alphabet,
            elements,
            roots,
            num_documents: self.num_documents,
        }
    }

    /// The child-sequence multiset of one element name.
    pub fn sequences_of(&self, name: &str) -> Option<&WordBag> {
        let sym = self.alphabet.get(name)?;
        self.elements.get(&sym).map(|f| &f.child_sequences)
    }

    /// Total number of extracted words (occurrences, not distinct
    /// sequences) across all elements.
    pub fn total_sequences(&self) -> usize {
        self.elements
            .values()
            .map(|f| f.child_sequences.total() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_child_sequences() {
        let mut c = Corpus::new();
        c.add_document("<r><a/><b/><a/></r>").unwrap();
        c.add_document("<r><b/></r>").unwrap();
        let r = c.sequences_of("r").unwrap();
        assert_eq!(r.total(), 2);
        let words: Vec<String> = r.words().map(|w| c.alphabet.render_word(w, " ")).collect();
        assert_eq!(words, vec!["a b a", "b"]);
        // Leaves have empty sequences, deduplicated under one count.
        assert_eq!(c.sequences_of("a").unwrap().as_slice(), &[(vec![], 2)]);
    }

    #[test]
    fn repeated_shapes_collapse_into_counts() {
        let mut c = Corpus::new();
        for _ in 0..5 {
            c.add_document("<r><a/><b/></r>").unwrap();
        }
        c.add_document("<r><b/></r>").unwrap();
        let r = c.sequences_of("r").unwrap();
        assert_eq!(r.distinct(), 2, "two distinct shapes");
        assert_eq!(r.total(), 6, "six occurrences");
        let counts: Vec<u32> = r.iter().map(|(_, n)| n).collect();
        assert_eq!(counts, vec![5, 1]);
    }

    #[test]
    fn text_and_attributes_sampled() {
        let mut c = Corpus::new();
        c.add_document(r#"<r id="7"><t>  hello </t><t>42</t></r>"#)
            .unwrap();
        let t = c.alphabet.get("t").unwrap();
        let texts: Vec<_> = c.elements[&t].text_samples.entries().collect();
        assert_eq!(texts, vec![("42", 1), ("hello", 1)]);
        let r = c.alphabet.get("r").unwrap();
        let ids: Vec<_> = c.elements[&r].attributes["id"].entries().collect();
        assert_eq!(ids, vec![("7", 1)]);
        assert!(c.elements[&t].has_text());
        assert!(!c.elements[&t].has_element_children());
        assert!(c.elements[&r].has_element_children());
    }

    #[test]
    fn text_and_attribute_memory_is_bounded() {
        // A corpus with far more distinct values than the reservoir cap:
        // retained sample counts stay at the cap while totals stay exact.
        let mut c = Corpus::new();
        let cap = crate::samples::DEFAULT_SAMPLE_CAP;
        for i in 0..(cap * 10) {
            c.add_document(&format!(r#"<r k="val{i}"><t>text {i}</t></r>"#))
                .unwrap();
        }
        let t = c.alphabet.get("t").unwrap();
        let bag = &c.elements[&t].text_samples;
        assert_eq!(bag.distinct_retained(), cap);
        assert!(bag.overflowed());
        assert_eq!(bag.total(), (cap * 10) as u64);
        let r = c.alphabet.get("r").unwrap();
        let ids = &c.elements[&r].attributes["k"];
        assert_eq!(ids.distinct_retained(), cap);
        assert_eq!(ids.total(), (cap * 10) as u64);
    }

    #[test]
    fn parse_error_carries_source_when_named() {
        let mut c = Corpus::new();
        let err = c
            .add_document_from("<r><a></r>", "corpus/broken.xml")
            .unwrap_err();
        assert_eq!(err.source.as_deref(), Some("corpus/broken.xml"));
        assert!(err.to_string().starts_with("corpus/broken.xml: "));
    }

    #[test]
    fn root_detection() {
        let mut c = Corpus::new();
        c.add_document("<r><a/></r>").unwrap();
        c.add_document("<r/>").unwrap();
        c.add_document("<other/>").unwrap();
        assert_eq!(c.root(), c.alphabet.get("r"));
        assert_eq!(c.num_documents, 3);
    }

    #[test]
    fn whitespace_only_text_ignored() {
        let mut c = Corpus::new();
        c.add_document("<r>\n  <a/>\n</r>").unwrap();
        let r = c.alphabet.get("r").unwrap();
        assert!(!c.elements[&r].has_text());
    }

    #[test]
    fn parse_errors_propagate() {
        let mut c = Corpus::new();
        assert!(c.add_document("<r><a></r>").is_err());
    }

    #[test]
    fn canonicalized_sorts_alphabet_by_name() {
        let mut c = Corpus::new();
        c.add_document("<z><m/><a/></z>").unwrap();
        let canon = c.canonicalized();
        let names: Vec<_> = canon
            .alphabet
            .entries()
            .map(|(_, n)| n.to_owned())
            .collect();
        assert_eq!(names, vec!["a", "m", "z"]);
        // Same facts, relabeled.
        assert_eq!(canon.num_documents, 1);
        let z = canon.alphabet.get("z").unwrap();
        let word = canon.elements[&z]
            .child_sequences
            .words()
            .next()
            .expect("one sequence");
        assert_eq!(canon.alphabet.render_word(word, " "), "m a");
        assert_eq!(canon.root(), Some(z));
        // Already-canonical corpora come back unchanged.
        assert_eq!(canon.canonicalized().alphabet, canon.alphabet);
    }

    #[test]
    fn root_ties_break_by_name() {
        let mut c = Corpus::new();
        c.add_document("<z/>").unwrap();
        c.add_document("<a/>").unwrap();
        assert_eq!(c.root(), c.alphabet.get("a"));
        // More documents beat name order.
        c.add_document("<z/>").unwrap();
        assert_eq!(c.root(), c.alphabet.get("z"));
    }

    #[test]
    fn occurrence_counting() {
        let mut c = Corpus::new();
        c.add_document("<r><a/><a/><a/></r>").unwrap();
        let a = c.alphabet.get("a").unwrap();
        assert_eq!(c.elements[&a].occurrences, 3);
        assert_eq!(c.total_sequences(), 4);
    }
}
