//! Schema comparison — the §1.1 "schema cleaning" workflow.
//!
//! The paper's motivating example compares a published DTD against one
//! inferred from the data: the refinfo content model turned out to be
//! *stricter* in the corpus (`(volume | month)` instead of
//! `volume? month?`), revealing latent semantics. This module compares two
//! DTDs element by element at the language level (DFA inclusion both ways)
//! and classifies each element into equal / stricter / looser /
//! incomparable / missing.

use crate::dtd::{ContentSpec, Dtd};
use dtdinfer_automata::dfa::{dfa_subset, joint_alphabet, Dfa};
use dtdinfer_regex::alphabet::{Alphabet, Word};
use dtdinfer_regex::ast::Regex;
use std::fmt;

/// Relationship between the content models of one element in two DTDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Same language.
    Equal,
    /// The second (e.g. inferred) model accepts a strict subset — it is
    /// *stricter*, like the refinfo discovery.
    Stricter,
    /// The second model accepts a strict superset.
    Looser,
    /// Neither contains the other.
    Incomparable,
    /// Declared only in the first DTD.
    OnlyInFirst,
    /// Declared only in the second DTD.
    OnlyInSecond,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Equal => "equal",
            Relation::Stricter => "stricter",
            Relation::Looser => "looser",
            Relation::Incomparable => "incomparable",
            Relation::OnlyInFirst => "only in first",
            Relation::OnlyInSecond => "only in second",
        })
    }
}

/// One element's comparison result.
#[derive(Debug, Clone)]
pub struct ElementDiff {
    /// Element name.
    pub name: String,
    /// How the second DTD's model relates to the first's.
    pub relation: Relation,
}

/// Example (the §1.1 refinfo discovery):
///
/// ```
/// use dtdinfer_xml::diff::{diff, Relation};
/// use dtdinfer_xml::dtd::Dtd;
///
/// let published = Dtd::parse("<!ELEMENT r (v?, m?)><!ELEMENT v EMPTY><!ELEMENT m EMPTY>").unwrap();
/// let inferred = Dtd::parse("<!ELEMENT r (v | m)><!ELEMENT v EMPTY><!ELEMENT m EMPTY>").unwrap();
/// let diffs = diff(&published, &inferred);
/// let r = diffs.iter().find(|d| d.name == "r").unwrap();
/// assert_eq!(r.relation, Relation::Stricter);
/// ```
/// Compares `second` against `first` (order matters: `Stricter` means the
/// second is stricter). Elements are matched by name.
pub fn diff(first: &Dtd, second: &Dtd) -> Vec<ElementDiff> {
    let mut names: Vec<String> = first
        .elements
        .keys()
        .map(|&s| first.alphabet.name(s).to_owned())
        .collect();
    for &s in second.elements.keys() {
        let n = second.alphabet.name(s).to_owned();
        if !names.contains(&n) {
            names.push(n);
        }
    }
    names
        .into_iter()
        .map(|name| {
            let a = first
                .alphabet
                .get(&name)
                .and_then(|s| first.elements.get(&s))
                .map(|spec| (spec, &first.alphabet));
            let b = second
                .alphabet
                .get(&name)
                .and_then(|s| second.elements.get(&s))
                .map(|spec| (spec, &second.alphabet));
            let relation = match (a, b) {
                (None, None) => unreachable!("name came from one of the DTDs"),
                (Some(_), None) => Relation::OnlyInFirst,
                (None, Some(_)) => Relation::OnlyInSecond,
                (Some((sa, ala)), Some((sb, alb))) => compare_specs(sa, ala, sb, alb),
            };
            ElementDiff { name, relation }
        })
        .collect()
}

/// Compares two content specs at the language level. The comparison works
/// over element-*name* words, so the two DTDs may use different alphabets.
fn compare_specs(a: &ContentSpec, al_a: &Alphabet, b: &ContentSpec, al_b: &Alphabet) -> Relation {
    use ContentSpec as C;
    match (a, b) {
        (C::Empty, C::Empty) | (C::PcData, C::PcData) | (C::Any, C::Any) => Relation::Equal,
        // ANY contains everything; EMPTY/PCDATA accept no element children.
        (C::Any, _) => Relation::Stricter,
        (_, C::Any) => Relation::Looser,
        // EMPTY and PCDATA both mean "no element children": equal as child
        // languages (the text dimension is reported by validation instead).
        (C::Empty | C::PcData, C::Empty | C::PcData) => Relation::Equal,
        (C::Mixed(xs), C::Mixed(ys)) => {
            let xs: std::collections::BTreeSet<&str> = xs.iter().map(|&s| al_a.name(s)).collect();
            let ys: std::collections::BTreeSet<&str> = ys.iter().map(|&s| al_b.name(s)).collect();
            match (ys.is_subset(&xs), xs.is_subset(&ys)) {
                (true, true) => Relation::Equal,
                (true, false) => Relation::Stricter,
                (false, true) => Relation::Looser,
                (false, false) => Relation::Incomparable,
            }
        }
        (C::Children(ra), C::Children(rb)) => compare_regexes(ra, al_a, rb, al_b),
        // A content model vs no-children: the childless side's language is
        // {ε}, which a nullable model strictly contains (paper REs always
        // accept at least one non-empty word).
        (C::Children(ra), C::Empty | C::PcData) => {
            if ra.nullable() {
                Relation::Stricter
            } else {
                Relation::Incomparable
            }
        }
        (C::Empty | C::PcData, C::Children(rb)) => {
            if rb.nullable() {
                Relation::Looser
            } else {
                Relation::Incomparable
            }
        }
        // Mixed content interleaves text with elements; comparisons against
        // the remaining forms are not meaningful at the child-word level.
        (C::Mixed(_), _) | (_, C::Mixed(_)) => Relation::Incomparable,
    }
}

/// Language comparison of two expressions over (possibly) different
/// alphabets, by name-aligning the symbols into a common alphabet.
pub fn compare_regexes(ra: &Regex, al_a: &Alphabet, rb: &Regex, al_b: &Alphabet) -> Relation {
    let mut common = Alphabet::new();
    let map_a = remap(ra, al_a, &mut common);
    let map_b = remap(rb, al_b, &mut common);
    let alpha = joint_alphabet(&[&map_a.symbols(), &map_b.symbols()]);
    let da = Dfa::from_regex(&map_a, &alpha);
    let db = Dfa::from_regex(&map_b, &alpha);
    match (dfa_subset(&db, &da), dfa_subset(&da, &db)) {
        (true, true) => Relation::Equal,
        (true, false) => Relation::Stricter,
        (false, true) => Relation::Looser,
        (false, false) => Relation::Incomparable,
    }
}

/// Rebuilds `r` over `common`, translating symbols by name.
fn remap(r: &Regex, from: &Alphabet, common: &mut Alphabet) -> Regex {
    match r {
        Regex::Symbol(s) => Regex::sym(common.intern(from.name(*s))),
        Regex::Concat(v) => Regex::concat(v.iter().map(|p| remap(p, from, common)).collect()),
        Regex::Union(v) => Regex::union(v.iter().map(|p| remap(p, from, common)).collect()),
        Regex::Optional(p) => Regex::optional(remap(p, from, common)),
        Regex::Plus(p) => Regex::plus(remap(p, from, common)),
        Regex::Star(p) => Regex::star(remap(p, from, common)),
    }
}

/// Convenience for reports: a word of element names rendered by the DTD
/// whose alphabet produced it.
pub fn render_word(al: &Alphabet, w: &Word) -> String {
    al.render_word(w, " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const PUBLISHED: &str = r#"
<!ELEMENT refinfo (authors, citation, volume?, month?, year)>
<!ELEMENT authors (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT legacy EMPTY>
"#;

    const INFERRED: &str = r#"
<!ELEMENT refinfo (authors, citation, (volume | month), year)>
<!ELEMENT authors (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT extra EMPTY>
"#;

    fn relation_of(diffs: &[ElementDiff], name: &str) -> Relation {
        diffs
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .relation
    }

    #[test]
    fn refinfo_is_stricter() {
        let a = Dtd::parse(PUBLISHED).unwrap();
        let b = Dtd::parse(INFERRED).unwrap();
        let diffs = diff(&a, &b);
        assert_eq!(relation_of(&diffs, "refinfo"), Relation::Stricter);
        assert_eq!(relation_of(&diffs, "authors"), Relation::Equal);
        assert_eq!(relation_of(&diffs, "legacy"), Relation::OnlyInFirst);
        assert_eq!(relation_of(&diffs, "extra"), Relation::OnlyInSecond);
    }

    #[test]
    fn looser_and_incomparable() {
        let a = Dtd::parse("<!ELEMENT r (x, y)><!ELEMENT x EMPTY><!ELEMENT y EMPTY>").unwrap();
        let looser =
            Dtd::parse("<!ELEMENT r (x?, y?)><!ELEMENT x EMPTY><!ELEMENT y EMPTY>").unwrap();
        let incomp = Dtd::parse("<!ELEMENT r (y, x)><!ELEMENT x EMPTY><!ELEMENT y EMPTY>").unwrap();
        assert_eq!(relation_of(&diff(&a, &looser), "r"), Relation::Looser);
        assert_eq!(relation_of(&diff(&a, &incomp), "r"), Relation::Incomparable);
    }

    #[test]
    fn cross_alphabet_comparison() {
        // Same names, different intern orders must not matter.
        let a = Dtd::parse("<!ELEMENT r (b, a)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>").unwrap();
        let b = Dtd::parse("<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT r (b, a)>").unwrap();
        let diffs = diff(&a, &b);
        assert_eq!(relation_of(&diffs, "r"), Relation::Equal);
    }

    #[test]
    fn empty_vs_nullable_children() {
        let a = Dtd::parse("<!ELEMENT r EMPTY>").unwrap();
        let b = Dtd::parse("<!ELEMENT r (x*)><!ELEMENT x EMPTY>").unwrap();
        // Second accepts ε plus more → looser.
        assert_eq!(relation_of(&diff(&a, &b), "r"), Relation::Looser);
        let c = Dtd::parse("<!ELEMENT r (x+)><!ELEMENT x EMPTY>").unwrap();
        assert_eq!(relation_of(&diff(&a, &c), "r"), Relation::Incomparable);
    }

    #[test]
    fn mixed_subset() {
        let a = Dtd::parse(
            "<!ELEMENT p (#PCDATA | em | strong)*><!ELEMENT em EMPTY><!ELEMENT strong EMPTY>",
        )
        .unwrap();
        let b =
            Dtd::parse("<!ELEMENT p (#PCDATA | em)*><!ELEMENT em EMPTY><!ELEMENT strong EMPTY>")
                .unwrap();
        assert_eq!(relation_of(&diff(&a, &b), "p"), Relation::Stricter);
    }
}
