//! The metrics registry: named monotonic counters and value histograms
//! with percentile summaries and a stable JSON serialization.

use crate::json::write_key;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Histograms keep at most this many raw samples; beyond it, reservoir
/// sampling keeps the retained set uniform over everything observed while
/// count/sum/max stay exact.
const RESERVOIR: usize = 4096;

/// One histogram's raw state.
#[derive(Debug, Default, Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    samples: Vec<u64>,
    /// Cheap xorshift state for reservoir replacement decisions.
    rng: u64,
}

impl Histogram {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        if self.samples.len() < RESERVOIR {
            self.samples.push(value);
        } else {
            // Algorithm R: replace a random slot with probability
            // RESERVOIR / count.
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            let slot = (self.rng % self.count) as usize;
            if slot < RESERVOIR {
                self.samples[slot] = value;
            }
        }
    }

    fn summary(&self) -> HistogramSummary {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
        }
    }
}

/// Nearest-rank percentile of an already-sorted sample set. Well-defined
/// on every input size: an empty set reports 0 (and a count of 0 in the
/// surrounding summary, so consumers can tell "no data" from "observed
/// 0"), a single sample is its own p50, p95, and max, and `p` is clamped
/// to [0, 1] so a caller can never index out of bounds.
fn nearest_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let p = p.clamp(0.0, 1.0);
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Renders the canonical key of a labeled series: the bare metric name
/// when `labels` is empty, otherwise `name{k="v",k2="v2"}` with labels
/// sorted by key and values escaped OpenMetrics-style (`\\`, `\"`,
/// `\n`). The registry stores labeled series under this rendered key in
/// the same maps as unlabeled ones, so every downstream consumer —
/// snapshot JSON, text rendering, timeseries sampling, exposition —
/// carries label sets through without a schema change.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::with_capacity(name.len() + 8 + labels.len() * 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a canonical series key back into `(name, label_block)`, where
/// the block is the text between the braces — still escaped, in
/// [`series_key`] order — or `None` for unlabeled keys.
pub fn split_series_key(key: &str) -> (&str, Option<&str>) {
    match key.split_once('{') {
        Some((name, rest)) => (name, Some(rest.strip_suffix('}').unwrap_or(rest))),
        None => (key, None),
    }
}

/// Percentile summary of a histogram. p50/p95 come from a uniform
/// reservoir of the observations; count, sum, and max are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median observed value.
    pub p50: u64,
    /// 95th-percentile observed value.
    pub p95: u64,
}

impl HistogramSummary {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time copy of every counter, gauge, and histogram.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last set value, sorted by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram name → summary, sorted by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The stable JSON form:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}` with keys in
    /// sorted order, so diffs and golden tests are deterministic.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        write_key(&mut out, "counters");
        out.push('{');
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_key(&mut out, name);
            out.push_str(&value.to_string());
        }
        out.push_str("},");
        write_key(&mut out, "gauges");
        out.push('{');
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_key(&mut out, name);
            out.push_str(&value.to_string());
        }
        out.push_str("},");
        write_key(&mut out, "histograms");
        out.push('{');
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_key(&mut out, name);
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
                h.count,
                h.sum,
                h.mean(),
                h.p50,
                h.p95,
                h.max
            ));
        }
        out.push_str("}}");
        out
    }

    /// Human-oriented rendering for `-v` / progress output: one
    /// `name value` line per counter, then one summary line per histogram.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name} count={} mean={} p50={} p95={} max={}\n",
                h.count,
                h.mean(),
                h.p50,
                h.p95,
                h.max
            ));
        }
        out
    }
}

/// The process-wide registry. All mutation goes through [`crate::count`] /
/// [`crate::observe`], which gate on the global enable flag first.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Adds `n` to a counter, creating it at zero first if needed.
    pub fn count(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.counters.get_mut(name) {
            Some(slot) => *slot += n,
            None => {
                inner.counters.insert(name.to_owned(), n);
            }
        }
    }

    /// Sets a gauge to `value` (last write wins). Gauges record
    /// point-in-time facts — per-worker busy time, queue depths — where
    /// accumulation across runs would be meaningless.
    pub fn gauge(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.insert(name.to_owned(), value);
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram {
                    // Seed per-histogram reservoir RNG from the name so
                    // runs are deterministic for a fixed workload.
                    rng: name.bytes().fold(0xcbf29ce484222325, |acc, b| {
                        (acc ^ u64::from(b)).wrapping_mul(0x100000001b3)
                    }) | 1,
                    ..Histogram::default()
                };
                h.record(value);
                inner.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Adds `n` to the counter series `name{labels}`.
    pub fn count_with(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        self.count(&series_key(name, labels), n);
    }

    /// Sets the gauge series `name{labels}` to `value` (last write wins).
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.gauge(&series_key(name, labels), value);
    }

    /// Records one observation in the histogram series `name{labels}`.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.observe(&series_key(name, labels), value);
    }

    /// Clears every counter, gauge, and histogram.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.summary()))
                .collect(),
        }
    }
}

/// The global registry (created on first use).
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::default();
        r.count("a", 1);
        r.count("a", 41);
        r.count("b", 7);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a"], 42);
        assert_eq!(snap.counters["b"], 7);
    }

    #[test]
    fn histogram_percentiles_exact_when_small() {
        let r = Registry::default();
        for v in 1..=100u64 {
            r.observe("h", v);
        }
        let h = &r.snapshot().histograms["h"];
        assert_eq!(h.count, 100);
        assert_eq!(h.sum, 5050);
        assert_eq!(h.max, 100);
        assert_eq!(h.mean(), 50);
        assert!((48..=52).contains(&h.p50), "p50={}", h.p50);
        assert!((93..=97).contains(&h.p95), "p95={}", h.p95);
    }

    #[test]
    fn histogram_reservoir_keeps_exact_aggregates() {
        let r = Registry::default();
        let n = (RESERVOIR * 3) as u64;
        for v in 0..n {
            r.observe("big", v);
        }
        let h = &r.snapshot().histograms["big"];
        assert_eq!(h.count, n);
        assert_eq!(h.max, n - 1);
        assert_eq!(h.sum, n * (n - 1) / 2);
        // The sampled median of 0..n should land near n/2.
        let mid = n / 2;
        assert!(
            h.p50 > mid / 2 && h.p50 < mid + mid / 2,
            "reservoir p50 wildly off: {} vs {mid}",
            h.p50
        );
    }

    #[test]
    fn single_sample_percentiles_are_the_sample() {
        let r = Registry::default();
        r.observe("once", 37);
        let h = &r.snapshot().histograms["once"];
        assert_eq!(
            (h.count, h.sum, h.p50, h.p95, h.max, h.mean()),
            (1, 37, 37, 37, 37, 37),
            "one observation defines every percentile: {h:?}"
        );
        // A single zero observation is distinguishable from "no data"
        // only by its count.
        let r = Registry::default();
        r.observe("zero", 0);
        let h = &r.snapshot().histograms["zero"];
        assert_eq!((h.count, h.p50, h.p95, h.max), (1, 0, 0, 0));
    }

    #[test]
    fn empty_percentiles_are_zero_not_garbage() {
        assert_eq!(nearest_rank(&[], 0.50), 0);
        assert_eq!(nearest_rank(&[], 0.95), 0);
        let h = Histogram::default().summary();
        assert_eq!((h.count, h.sum, h.p50, h.p95, h.max), (0, 0, 0, 0, 0));
        assert_eq!(h.mean(), 0, "mean of nothing must not divide by zero");
    }

    #[test]
    fn nearest_rank_clamps_out_of_range_quantiles() {
        let sorted = [1u64, 2, 3];
        assert_eq!(nearest_rank(&sorted, -0.5), 1, "p below 0 clamps to min");
        assert_eq!(nearest_rank(&sorted, 1.5), 3, "p above 1 clamps to max");
        assert_eq!(nearest_rank(&sorted, 0.0), 1);
        assert_eq!(nearest_rank(&sorted, 1.0), 3);
    }

    #[test]
    fn two_sample_percentiles_bracket_the_range() {
        let r = Registry::default();
        r.observe("pair", 10);
        r.observe("pair", 30);
        let h = &r.snapshot().histograms["pair"];
        assert!(h.p50 == 10 || h.p50 == 30, "{h:?}");
        assert_eq!(h.p95, 30, "p95 of two samples is the larger");
        assert_eq!(h.max, 30);
    }

    #[test]
    fn json_shape_is_stable_and_sorted() {
        let r = Registry::default();
        r.count("z.last", 1);
        r.count("a.first", 2);
        r.gauge("g.worker", 7);
        r.observe("t", 5);
        let json = r.snapshot().json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.first\":2,\"z.last\":1},\
             \"gauges\":{\"g.worker\":7},\
             \"histograms\":{\"t\":{\"count\":1,\"sum\":5,\"mean\":5,\
             \"p50\":5,\"p95\":5,\"max\":5}}}"
        );
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snap = MetricsSnapshot::default();
        assert_eq!(
            snap.json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(snap.render_text(), "");
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::default();
        r.gauge("depth", 3);
        r.gauge("depth", 9);
        r.gauge("depth", 4);
        assert_eq!(r.snapshot().gauges["depth"], 4);
    }

    /// The reservoir's xorshift replacement is seeded from the histogram
    /// name, so an identical observation sequence — including one long
    /// enough to exercise replacement — must produce identical percentile
    /// summaries and a byte-identical snapshot across runs.
    #[test]
    fn reservoir_summaries_are_deterministic_across_runs() {
        let sequence: Vec<u64> = (0..(RESERVOIR as u64) * 4)
            .map(|i| i.wrapping_mul(2_654_435_761) % 1_000_000)
            .collect();
        let run = || {
            let r = Registry::default();
            for &v in &sequence {
                r.observe("latency", v);
            }
            r.snapshot()
        };
        let (a, b) = (run(), run());
        let (ha, hb) = (&a.histograms["latency"], &b.histograms["latency"]);
        assert_eq!((ha.p50, ha.p95, ha.max), (hb.p50, hb.p95, hb.max));
        assert_eq!(a.json(), b.json(), "snapshot JSON must be byte-identical");
    }

    #[test]
    fn series_key_is_canonical() {
        assert_eq!(series_key("plain", &[]), "plain");
        assert_eq!(
            series_key(
                "http.requests",
                &[("status_class", "2xx"), ("route", "/dtd")]
            ),
            "http.requests{route=\"/dtd\",status_class=\"2xx\"}",
            "labels must sort by key regardless of call-site order"
        );
        assert_eq!(
            series_key("m", &[("k", "a\"b\\c\nd")]),
            "m{k=\"a\\\"b\\\\c\\nd\"}",
            "quote, backslash, and newline must be escaped"
        );
    }

    #[test]
    fn split_series_key_inverts_rendering() {
        assert_eq!(split_series_key("plain"), ("plain", None));
        let key = series_key("m", &[("a", "1"), ("b", "x,y")]);
        assert_eq!(split_series_key(&key), ("m", Some("a=\"1\",b=\"x,y\"")));
    }

    #[test]
    fn labeled_series_are_distinct_and_accumulate() {
        let r = Registry::default();
        r.count_with("req", &[("route", "/a")], 1);
        r.count_with("req", &[("route", "/a")], 2);
        r.count_with("req", &[("route", "/b")], 5);
        r.count("req", 9);
        r.gauge_with("g", &[("session", "s1")], 7);
        r.observe_with("lat", &[("route", "/a")], 100);
        let snap = r.snapshot();
        assert_eq!(snap.counters["req{route=\"/a\"}"], 3);
        assert_eq!(snap.counters["req{route=\"/b\"}"], 5);
        assert_eq!(snap.counters["req"], 9, "unlabeled stays its own series");
        assert_eq!(snap.gauges["g{session=\"s1\"}"], 7);
        assert_eq!(snap.histograms["lat{route=\"/a\"}"].count, 1);
        // The JSON emit carries labeled keys through (escaped as JSON).
        assert!(
            snap.json().contains("req{route=\\\"/a\\\"}"),
            "{}",
            snap.json()
        );
    }

    #[test]
    fn render_text_lists_everything() {
        let r = Registry::default();
        r.count("c", 3);
        r.observe("h", 9);
        let text = r.snapshot().render_text();
        assert!(text.contains("c 3\n"));
        assert!(text.contains("h count=1"));
    }
}
