//! Chrome trace-event export: renders a recorded trace as the JSON array
//! format understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! Spans become `"ph":"X"` *complete* events (one slice per span, placed on
//! the row of the thread that ran it via `tid`), point events become
//! `"ph":"i"` *instant* events with their key/value payload under `args`.
//! Timestamps are microseconds with nanosecond precision kept in the
//! fractional part, rendered as exact decimals so the output is
//! byte-deterministic for a fixed trace.

use crate::json::{write_key, write_string};
use crate::trace::TraceEntry;

/// Nanosecond offset → Chrome's microsecond timestamp, exact to the ns.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders `entries` as one Chrome trace-event JSON array. Every event
/// carries `pid:1` (single process) and the recording thread's id as
/// `tid`, so a run with `--jobs N` shows one row per worker thread. Each
/// distinct tid also gets a `"ph":"M"` `thread_name` metadata record
/// (tid 0 is `main`, others `worker-<tid>`), so viewers label the rows.
/// All names and field values pass through the JSON string escaper, so
/// quotes and control characters in span names or event payloads cannot
/// break the output.
pub fn chrome_trace(entries: &[TraceEntry]) -> String {
    let mut tids: Vec<u64> = entries
        .iter()
        .map(|e| match e {
            TraceEntry::Span { tid, .. } | TraceEntry::Event { tid, .. } => *tid,
        })
        .collect();
    tids.sort_unstable();
    tids.dedup();
    let mut out = String::from("[");
    let mut first = true;
    for tid in tids {
        if !first {
            out.push(',');
        }
        first = false;
        let label = if tid == 0 {
            "main".to_owned()
        } else {
            format!("worker-{tid}")
        };
        out.push_str("\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,");
        out.push_str(&format!("\"tid\":{tid},\"args\":{{\"name\":"));
        write_string(&mut out, &label);
        out.push_str("}}");
    }
    for entry in entries.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push('{');
        match entry {
            TraceEntry::Span {
                name,
                start_ns,
                dur_ns,
                tid,
            } => {
                write_key(&mut out, "name");
                write_string(&mut out, name);
                out.push_str(&format!(
                    ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}",
                    us(*start_ns),
                    us(*dur_ns)
                ));
            }
            TraceEntry::Event {
                name,
                at_ns,
                tid,
                fields,
            } => {
                write_key(&mut out, "name");
                write_string(&mut out, name);
                out.push_str(&format!(
                    ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{tid}",
                    us(*at_ns)
                ));
                out.push(',');
                write_key(&mut out, "args");
                out.push('{');
                for (j, (k, v)) in fields.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write_key(&mut out, k);
                    write_string(&mut out, v);
                }
                out.push('}');
            }
        }
        out.push('}');
    }
    out.push_str("\n]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_become_complete_events() {
        let entries = vec![
            TraceEntry::Span {
                name: "engine.shard",
                start_ns: 1_234_567,
                dur_ns: 2_000,
                tid: 2,
            },
            TraceEntry::Event {
                name: "repair",
                at_ns: 1_500,
                tid: 0,
                fields: vec![("k".to_owned(), "2".to_owned())],
            },
        ];
        let json = chrome_trace(&entries);
        assert_eq!(
            json,
            "[\n\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"main\"}},\n\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\
             \"args\":{\"name\":\"worker-2\"}},\n\
             {\"name\":\"engine.shard\",\"cat\":\"span\",\"ph\":\"X\",\
             \"ts\":1234.567,\"dur\":2.000,\"pid\":1,\"tid\":2},\n\
             {\"name\":\"repair\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":1.500,\"pid\":1,\"tid\":0,\"args\":{\"k\":\"2\"}}\n]"
        );
    }

    #[test]
    fn hostile_names_and_values_stay_valid_json() {
        // Span names are static strings but nothing stops a call site
        // from embedding quotes, backslashes, or control characters; the
        // exporter must escape them rather than emit broken JSON.
        let entries = vec![
            TraceEntry::Span {
                name: "evil\"span\\name\nwith\tctl\u{1}",
                start_ns: 0,
                dur_ns: 10,
                tid: 0,
            },
            TraceEntry::Event {
                name: "e\"v",
                at_ns: 5,
                tid: 0,
                fields: vec![("k\"ey".to_owned(), "va\\l\nue\u{2}".to_owned())],
            },
        ];
        let json = chrome_trace(&entries);
        let value = crate::json::Value::parse(&json).expect(&json);
        let arr = value.as_arr().unwrap();
        // Metadata + span + event.
        assert_eq!(arr.len(), 3);
        assert_eq!(
            arr[1].get("name").unwrap().as_str(),
            Some("evil\"span\\name\nwith\tctl\u{1}"),
            "escaping must round-trip, not mangle"
        );
        assert_eq!(
            arr[2].get("args").unwrap().get("k\"ey").unwrap().as_str(),
            Some("va\\l\nue\u{2}")
        );
    }

    #[test]
    fn concurrent_emission_from_many_workers_stays_valid() {
        // Hammer a shared buffer from several threads the way the engine
        // pool does, then render: the combined trace must parse, keep
        // every entry, and carry one thread_name record per worker.
        let entries = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for worker in 0..4u64 {
                let entries = &entries;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let entry = if i % 7 == 0 {
                            TraceEntry::Event {
                                name: "evt\"x",
                                at_ns: i * 10,
                                tid: worker,
                                fields: vec![("i".to_owned(), format!("{i}\n"))],
                            }
                        } else {
                            TraceEntry::Span {
                                name: "engine.derive",
                                start_ns: i * 10,
                                dur_ns: 9,
                                tid: worker,
                            }
                        };
                        entries.lock().unwrap().push(entry);
                    }
                });
            }
        });
        let entries = entries.into_inner().unwrap();
        assert_eq!(entries.len(), 200);
        let json = chrome_trace(&entries);
        let value = crate::json::Value::parse(&json).expect("interleaved trace must stay valid");
        let arr = value.as_arr().unwrap();
        assert_eq!(arr.len(), 200 + 4, "200 entries + 4 thread_name records");
        let meta = arr
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .count();
        assert_eq!(meta, 4);
    }

    #[test]
    fn output_parses_as_a_json_array() {
        let entries = vec![TraceEntry::Span {
            name: "a",
            start_ns: 0,
            dur_ns: 1,
            tid: 0,
        }];
        let value = crate::json::Value::parse(&chrome_trace(&entries)).unwrap();
        let arr = value.as_arr().expect("array");
        assert_eq!(arr.len(), 2, "thread_name metadata + the span");
        let meta = arr[0].as_obj().expect("object");
        assert_eq!(meta["ph"].as_str(), Some("M"));
        let ev = arr[1].as_obj().expect("object");
        assert_eq!(ev["ph"].as_str(), Some("X"));
        assert_eq!(ev["pid"].as_f64(), Some(1.0));
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        assert_eq!(chrome_trace(&[]), "[\n]");
        assert!(crate::json::Value::parse(&chrome_trace(&[])).is_ok());
    }
}
