//! Chrome trace-event export: renders a recorded trace as the JSON array
//! format understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! Spans become `"ph":"X"` *complete* events (one slice per span, placed on
//! the row of the thread that ran it via `tid`), point events become
//! `"ph":"i"` *instant* events with their key/value payload under `args`.
//! Timestamps are microseconds with nanosecond precision kept in the
//! fractional part, rendered as exact decimals so the output is
//! byte-deterministic for a fixed trace.

use crate::json::{write_key, write_string};
use crate::trace::TraceEntry;

/// Nanosecond offset → Chrome's microsecond timestamp, exact to the ns.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders `entries` as one Chrome trace-event JSON array. Every event
/// carries `pid:1` (single process) and the recording thread's id as
/// `tid`, so a run with `--jobs N` shows one row per worker thread.
pub fn chrome_trace(entries: &[TraceEntry]) -> String {
    let mut out = String::from("[");
    for (i, entry) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push('{');
        match entry {
            TraceEntry::Span {
                name,
                start_ns,
                dur_ns,
                tid,
            } => {
                write_key(&mut out, "name");
                write_string(&mut out, name);
                out.push_str(&format!(
                    ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}",
                    us(*start_ns),
                    us(*dur_ns)
                ));
            }
            TraceEntry::Event {
                name,
                at_ns,
                tid,
                fields,
            } => {
                write_key(&mut out, "name");
                write_string(&mut out, name);
                out.push_str(&format!(
                    ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{tid}",
                    us(*at_ns)
                ));
                out.push(',');
                write_key(&mut out, "args");
                out.push('{');
                for (j, (k, v)) in fields.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write_key(&mut out, k);
                    write_string(&mut out, v);
                }
                out.push('}');
            }
        }
        out.push('}');
    }
    out.push_str("\n]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_become_complete_events() {
        let entries = vec![
            TraceEntry::Span {
                name: "engine.shard",
                start_ns: 1_234_567,
                dur_ns: 2_000,
                tid: 2,
            },
            TraceEntry::Event {
                name: "repair",
                at_ns: 1_500,
                tid: 0,
                fields: vec![("k".to_owned(), "2".to_owned())],
            },
        ];
        let json = chrome_trace(&entries);
        assert_eq!(
            json,
            "[\n\
             {\"name\":\"engine.shard\",\"cat\":\"span\",\"ph\":\"X\",\
             \"ts\":1234.567,\"dur\":2.000,\"pid\":1,\"tid\":2},\n\
             {\"name\":\"repair\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":1.500,\"pid\":1,\"tid\":0,\"args\":{\"k\":\"2\"}}\n]"
        );
    }

    #[test]
    fn output_parses_as_a_json_array() {
        let entries = vec![TraceEntry::Span {
            name: "a",
            start_ns: 0,
            dur_ns: 1,
            tid: 0,
        }];
        let value = crate::json::Value::parse(&chrome_trace(&entries)).unwrap();
        let arr = value.as_arr().expect("array");
        assert_eq!(arr.len(), 1);
        let ev = arr[0].as_obj().expect("object");
        assert_eq!(ev["ph"].as_str(), Some("X"));
        assert_eq!(ev["pid"].as_f64(), Some(1.0));
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        assert_eq!(chrome_trace(&[]), "[\n]");
        assert!(crate::json::Value::parse(&chrome_trace(&[])).is_ok());
    }
}
