//! The trace recorder: scoped spans with monotonic timings and key/value
//! events, collected in order into a thread-safe in-memory buffer.

use crate::json::{write_key, write_string};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One recorded trace entry. Offsets are nanoseconds since the recorder's
/// epoch (process start of tracing), from a monotonic clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEntry {
    /// A closed span: `name` ran from `start_ns` for `dur_ns`.
    Span {
        /// Span name (static call-site label).
        name: &'static str,
        /// Start offset in nanoseconds.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point event with key/value fields.
    Event {
        /// Event name (static call-site label).
        name: &'static str,
        /// Offset in nanoseconds.
        at_ns: u64,
        /// Key/value payload.
        fields: Vec<(String, String)>,
    },
}

impl TraceEntry {
    /// One JSON object (a JSON-lines record) for this entry.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        match self {
            TraceEntry::Span {
                name,
                start_ns,
                dur_ns,
            } => {
                write_key(&mut out, "span");
                write_string(&mut out, name);
                out.push_str(&format!(",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}"));
            }
            TraceEntry::Event {
                name,
                at_ns,
                fields,
            } => {
                write_key(&mut out, "event");
                write_string(&mut out, name);
                out.push_str(&format!(",\"at_ns\":{at_ns}"));
                for (k, v) in fields {
                    out.push(',');
                    write_key(&mut out, k);
                    write_string(&mut out, v);
                }
            }
        }
        out.push('}');
        out
    }
}

/// The process-wide trace recorder.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    entries: Mutex<Vec<TraceEntry>>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            entries: Mutex::new(Vec::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records a point event.
    pub fn event(&self, name: &'static str, fields: &[(&str, String)]) {
        let entry = TraceEntry::Event {
            name,
            at_ns: self.now_ns(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        };
        self.entries
            .lock()
            .expect("trace recorder poisoned")
            .push(entry);
    }

    fn push_span(&self, name: &'static str, start_ns: u64, dur_ns: u64) {
        self.entries
            .lock()
            .expect("trace recorder poisoned")
            .push(TraceEntry::Span {
                name,
                start_ns,
                dur_ns,
            });
    }

    /// Clears the buffer.
    pub fn reset(&self) {
        self.entries
            .lock()
            .expect("trace recorder poisoned")
            .clear();
    }

    /// Drains the buffer, oldest entry first.
    pub fn take(&self) -> Vec<TraceEntry> {
        std::mem::take(&mut *self.entries.lock().expect("trace recorder poisoned"))
    }
}

/// The global recorder (created on first use; the epoch is its creation
/// time).
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(Recorder::new)
}

/// Scoped span guard: measures from construction to drop.
///
/// When recording was off at open time the guard holds no timestamp and
/// drop is free — so a span in a hot path costs exactly one atomic load
/// while disabled.
#[must_use = "a span measures until dropped; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// `None` when recording was disabled at open time.
    start: Option<Instant>,
}

impl SpanGuard {
    pub(crate) fn open(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            start: crate::is_enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if crate::metrics_enabled() {
            crate::metrics::registry().observe(&format!("{}.ns", self.name), dur_ns);
        }
        if crate::trace_enabled() {
            let rec = recorder();
            let start_ns =
                u64::try_from(start.duration_since(rec.epoch).as_nanos()).unwrap_or(u64::MAX);
            rec.push_span(self.name, start_ns, dur_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_serialize_to_json_lines() {
        let span = TraceEntry::Span {
            name: "learn",
            start_ns: 10,
            dur_ns: 5,
        };
        assert_eq!(
            span.json(),
            "{\"span\":\"learn\",\"start_ns\":10,\"dur_ns\":5}"
        );
        let event = TraceEntry::Event {
            name: "repair",
            at_ns: 12,
            fields: vec![("kind".to_owned(), "enable-optional".to_owned())],
        };
        assert_eq!(
            event.json(),
            "{\"event\":\"repair\",\"at_ns\":12,\"kind\":\"enable-optional\"}"
        );
    }

    #[test]
    fn recorder_orders_and_drains() {
        let rec = Recorder::new();
        rec.event("first", &[]);
        rec.event("second", &[("n", "1".to_owned())]);
        let entries = rec.take();
        assert_eq!(entries.len(), 2);
        assert!(matches!(
            &entries[0],
            TraceEntry::Event { name: "first", .. }
        ));
        assert!(rec.take().is_empty(), "take drains");
    }

    #[test]
    fn span_guard_noop_when_disabled() {
        crate::disable();
        let g = SpanGuard::open("idle");
        assert!(g.start.is_none());
        drop(g);
    }
}
