//! The trace recorder: scoped spans with monotonic timings and key/value
//! events, collected in order into a thread-safe in-memory buffer.

use crate::json::{write_key, write_string};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Source of the small sequential thread ids used in trace entries.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// A small stable id for the calling thread, assigned in first-use order
/// (the main thread is almost always 0). Worker threads in the engine's
/// pool each get their own id, so spans recorded on different threads are
/// distinguishable in the trace — and land in separate rows of a Chrome
/// trace viewer (see [`crate::chrome`]).
pub fn current_tid() -> u64 {
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One recorded trace entry. Offsets are nanoseconds since the recorder's
/// epoch (process start of tracing), from a monotonic clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEntry {
    /// A closed span: `name` ran from `start_ns` for `dur_ns`.
    Span {
        /// Span name (static call-site label).
        name: &'static str,
        /// Start offset in nanoseconds.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
        /// Id of the thread that ran the span (see [`current_tid`]).
        tid: u64,
    },
    /// A point event with key/value fields.
    Event {
        /// Event name (static call-site label).
        name: &'static str,
        /// Offset in nanoseconds.
        at_ns: u64,
        /// Id of the thread that recorded the event (see [`current_tid`]).
        tid: u64,
        /// Key/value payload.
        fields: Vec<(String, String)>,
    },
}

impl TraceEntry {
    /// One JSON object (a JSON-lines record) for this entry.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        match self {
            TraceEntry::Span {
                name,
                start_ns,
                dur_ns,
                tid,
            } => {
                write_key(&mut out, "span");
                write_string(&mut out, name);
                out.push_str(&format!(
                    ",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns},\"tid\":{tid}"
                ));
            }
            TraceEntry::Event {
                name,
                at_ns,
                tid,
                fields,
            } => {
                write_key(&mut out, "event");
                write_string(&mut out, name);
                out.push_str(&format!(",\"at_ns\":{at_ns},\"tid\":{tid}"));
                for (k, v) in fields {
                    out.push(',');
                    write_key(&mut out, k);
                    write_string(&mut out, v);
                }
            }
        }
        out.push('}');
        out
    }
}

/// The process-wide trace recorder.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    entries: Mutex<Vec<TraceEntry>>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            entries: Mutex::new(Vec::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records a point event.
    pub fn event(&self, name: &'static str, fields: &[(&str, String)]) {
        let entry = TraceEntry::Event {
            name,
            at_ns: self.now_ns(),
            tid: current_tid(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        };
        self.entries
            .lock()
            .expect("trace recorder poisoned")
            .push(entry);
    }

    fn push_span(&self, name: &'static str, start_ns: u64, dur_ns: u64) {
        self.entries
            .lock()
            .expect("trace recorder poisoned")
            .push(TraceEntry::Span {
                name,
                start_ns,
                dur_ns,
                tid: current_tid(),
            });
    }

    /// Clears the buffer.
    pub fn reset(&self) {
        self.entries
            .lock()
            .expect("trace recorder poisoned")
            .clear();
    }

    /// Drains the buffer, oldest entry first.
    pub fn take(&self) -> Vec<TraceEntry> {
        std::mem::take(&mut *self.entries.lock().expect("trace recorder poisoned"))
    }
}

/// The global recorder (created on first use; the epoch is its creation
/// time).
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(Recorder::new)
}

/// Scoped span guard: measures from construction to drop.
///
/// When recording was off at open time the guard holds no timestamp and
/// drop is free — so a span in a hot path costs exactly one atomic load
/// while disabled.
#[must_use = "a span measures until dropped; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// `None` when recording was disabled at open time.
    start: Option<Instant>,
}

impl SpanGuard {
    pub(crate) fn open(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            start: crate::is_enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if crate::metrics_enabled() {
            crate::metrics::registry().observe(&format!("{}.ns", self.name), dur_ns);
        }
        if crate::trace_enabled() {
            let rec = recorder();
            let start_ns =
                u64::try_from(start.duration_since(rec.epoch).as_nanos()).unwrap_or(u64::MAX);
            rec.push_span(self.name, start_ns, dur_ns);
        }
        // Feed the flight recorder's ring (self-gated). This sits behind
        // the `start.is_some()` early return above, so a span in a fully
        // disabled process still costs exactly one atomic load.
        crate::flightrec::record_span(self.name, dur_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_serialize_to_json_lines() {
        let span = TraceEntry::Span {
            name: "learn",
            start_ns: 10,
            dur_ns: 5,
            tid: 0,
        };
        assert_eq!(
            span.json(),
            "{\"span\":\"learn\",\"start_ns\":10,\"dur_ns\":5,\"tid\":0}"
        );
        let event = TraceEntry::Event {
            name: "repair",
            at_ns: 12,
            tid: 3,
            fields: vec![("kind".to_owned(), "enable-optional".to_owned())],
        };
        assert_eq!(
            event.json(),
            "{\"event\":\"repair\",\"at_ns\":12,\"tid\":3,\"kind\":\"enable-optional\"}"
        );
    }

    #[test]
    fn thread_ids_are_stable_per_thread_and_distinct_across_threads() {
        let here = current_tid();
        assert_eq!(here, current_tid(), "tid must not change within a thread");
        let handles: Vec<_> = (0..3).map(|_| std::thread::spawn(current_tid)).collect();
        let mut tids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        tids.push(here);
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "every thread gets its own id: {tids:?}");
    }

    #[test]
    fn recorded_entries_carry_the_recording_thread() {
        let rec = Recorder::new();
        rec.event("main-side", &[]);
        let rec_ref = &rec;
        std::thread::scope(|s| {
            s.spawn(move || rec_ref.event("worker-side", &[]));
        });
        let entries = rec.take();
        let tids: Vec<u64> = entries
            .iter()
            .map(|e| match e {
                TraceEntry::Event { tid, .. } | TraceEntry::Span { tid, .. } => *tid,
            })
            .collect();
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1], "entries from two threads: {tids:?}");
    }

    #[test]
    fn recorder_orders_and_drains() {
        let rec = Recorder::new();
        rec.event("first", &[]);
        rec.event("second", &[("n", "1".to_owned())]);
        let entries = rec.take();
        assert_eq!(entries.len(), 2);
        assert!(matches!(
            &entries[0],
            TraceEntry::Event { name: "first", .. }
        ));
        assert!(rec.take().is_empty(), "take drains");
    }

    #[test]
    fn span_guard_noop_when_disabled() {
        crate::disable();
        let g = SpanGuard::open("idle");
        assert!(g.start.is_none());
        drop(g);
    }
}
