//! # dtdinfer-obs — observability substrate for the inference pipeline
//!
//! The paper's claims are quantitative (bounded rewrite derivations, repair
//! rules firing only on non-representative samples, CRX's O(n) sample
//! appetite), so the pipeline needs counters and timings to prove them —
//! and every future performance PR needs a baseline to be measured
//! against. This crate provides that substrate with zero dependencies:
//!
//! * a [`metrics`] registry of named **counters**, **gauges**, and
//!   **histograms** (p50/p95/max) with a stable JSON serialization;
//! * lightweight structured [`trace`] spans (scoped, monotonic timings)
//!   and key/value events, tagged with the recording thread's id and
//!   collected into a thread-safe in-memory recorder;
//! * a [`chrome`] exporter rendering a trace as Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`);
//! * the [`bench`] report model behind `perfgate`'s `BENCH_*.json`
//!   artifacts and its baseline-vs-candidate regression gate.
//!
//! ## No-op by default
//!
//! Nothing is recorded until [`enable`] is called. Every instrumentation
//! entry point begins with a single relaxed atomic load
//! ([`is_enabled`]); when recording is off that load is the *entire*
//! cost, so hot paths (2T-INF absorption, rewrite steps) can stay
//! instrumented permanently. The CLI turns recording on only when
//! `--metrics`, `--trace`, or `-v` is given; see `DESIGN.md`.
//!
//! ## Example
//!
//! ```
//! dtdinfer_obs::enable(true, true);
//! dtdinfer_obs::reset();
//! {
//!     let _span = dtdinfer_obs::span("learn");
//!     dtdinfer_obs::count("words", 3);
//!     dtdinfer_obs::observe("soa.edges", 17);
//! }
//! let snap = dtdinfer_obs::snapshot();
//! assert_eq!(snap.counters["words"], 3);
//! assert!(snap.json().contains("\"soa.edges\""));
//! assert_eq!(dtdinfer_obs::take_trace().len(), 1);
//! dtdinfer_obs::disable();
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod bench;
pub mod chrome;
pub mod flightrec;
pub mod json;
pub mod metrics;
pub mod openmetrics;
pub mod profile;
pub mod timeseries;
pub mod trace;

pub use chrome::chrome_trace;
pub use metrics::{HistogramSummary, MetricsSnapshot};
pub use trace::{current_tid, SpanGuard, TraceEntry};

/// Serializes tests that touch the process-global registry, recorder, or
/// recording state. Every such test (across this crate's modules) must
/// hold this lock, or the parallel test runner interleaves them.
#[cfg(test)]
pub(crate) fn global_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(std::sync::Mutex::default)
        .lock()
        .expect("obs global test lock poisoned")
}

use std::sync::atomic::{AtomicU8, Ordering};

/// Recording-state bit: the metrics registry is live.
const METRICS: u8 = 1;
/// Recording-state bit: the span/event recorder is live.
const TRACE: u8 = 2;

/// The global recording state. A single relaxed load of this atomic is the
/// full cost of every instrumentation call while recording is disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Turns recording on. `metrics` enables the counter/histogram registry,
/// `trace` the span/event recorder; both may be set independently.
pub fn enable(metrics: bool, trace: bool) {
    let bits = if metrics { METRICS } else { 0 } | if trace { TRACE } else { 0 };
    STATE.store(bits, Ordering::Relaxed);
}

/// Turns all recording off (the default state).
pub fn disable() {
    STATE.store(0, Ordering::Relaxed);
}

/// Whether any recording is on — the one-atomic-load fast-path gate.
#[inline(always)]
pub fn is_enabled() -> bool {
    STATE.load(Ordering::Relaxed) != 0
}

/// Whether the metrics registry is recording.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & METRICS != 0
}

/// Whether the span/event recorder is recording.
#[inline(always)]
pub fn trace_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & TRACE != 0
}

/// Adds `n` to the named counter. No-op unless metrics are enabled.
#[inline]
pub fn count(name: &str, n: u64) {
    if metrics_enabled() {
        metrics::registry().count(name, n);
    }
}

/// Adds `n` to the counter `prefix.label` — for per-rule / per-engine
/// breakdowns where the label is dynamic. No-op unless metrics are
/// enabled (so the formatting cost is only paid when recording).
#[inline]
pub fn count_labeled(prefix: &str, label: &str, n: u64) {
    if metrics_enabled() {
        metrics::registry().count(&format!("{prefix}.{label}"), n);
    }
}

/// Adds `n` to the counter series `name{labels}`. Labels are a small
/// static set of `(key, value)` pairs — `route`, `status_class`,
/// `session` — rendered into a canonical series key (sorted by key, see
/// [`metrics::series_key`]). Keep label cardinality bounded: every
/// distinct value set is its own series. No-op unless metrics are
/// enabled, so the rendering cost is only paid when recording.
#[inline]
pub fn count_with(name: &str, labels: &[(&str, &str)], n: u64) {
    if metrics_enabled() {
        metrics::registry().count_with(name, labels, n);
    }
}

/// Sets the gauge series `name{labels}` to `value` (last write wins).
/// See [`count_with`] for the label model.
#[inline]
pub fn gauge_with(name: &str, labels: &[(&str, &str)], value: u64) {
    if metrics_enabled() {
        metrics::registry().gauge_with(name, labels, value);
    }
}

/// Records one observation in the histogram series `name{labels}`.
/// See [`count_with`] for the label model.
#[inline]
pub fn observe_with(name: &str, labels: &[(&str, &str)], value: u64) {
    if metrics_enabled() {
        metrics::registry().observe_with(name, labels, value);
    }
}

/// Records one observation in the named histogram.
#[inline]
pub fn observe(name: &str, value: u64) {
    if metrics_enabled() {
        metrics::registry().observe(name, value);
    }
}

/// Sets the named gauge to `value` (last write wins). For point-in-time
/// facts — per-worker busy time, queue depths — where summing across
/// recordings would be meaningless. No-op unless metrics are enabled.
#[inline]
pub fn gauge(name: &str, value: u64) {
    if metrics_enabled() {
        metrics::registry().gauge(name, value);
    }
}

/// Opens a scoped span: the guard measures monotonic wall-clock time from
/// construction to drop. On drop the duration lands in the histogram
/// `<name>.ns` (when metrics are on) and as a span entry in the trace
/// recorder (when tracing is on). Cost when disabled: one atomic load.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::open(name)
}

/// Records a key/value event in the trace log (when tracing is enabled)
/// and in the flight-recorder ring (when [`flightrec`] is enabled); each
/// sink is gated independently. Build the field values lazily at the
/// call site when they are expensive
/// (`if dtdinfer_obs::trace_enabled() { ... }`).
#[inline]
pub fn event(name: &'static str, fields: &[(&str, String)]) {
    if trace_enabled() {
        trace::recorder().event(name, fields);
    }
    flightrec::record_event(name, fields);
}

/// Clears all recorded metrics and trace entries (recording state is
/// unchanged). Call before a measured section to get a clean report.
pub fn reset() {
    metrics::registry().reset();
    trace::recorder().reset();
}

/// A point-in-time copy of the metrics registry.
pub fn snapshot() -> MetricsSnapshot {
    metrics::registry().snapshot()
}

/// Drains and returns the recorded trace, oldest first.
pub fn take_trace() -> Vec<TraceEntry> {
    trace::recorder().take()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry and state are process-global, so exercise everything in
    // one test to avoid cross-test interference under the parallel runner.
    #[test]
    fn end_to_end_recording_and_gating() {
        let _g = global_test_lock();
        disable();
        count("gated", 1);
        gauge("gated.g", 1);
        observe("gated.h", 1);
        {
            let _s = span("gated.span");
        }
        enable(true, true);
        reset();
        let snap = snapshot();
        assert!(snap.counters.is_empty(), "disabled calls must not record");
        assert!(snap.gauges.is_empty(), "disabled gauges must not record");
        assert!(take_trace().is_empty());

        count("words", 2);
        count("words", 3);
        count_labeled("rule", "disjunction", 1);
        gauge("depth", 9);
        gauge("depth", 4);
        observe("sizes", 10);
        observe("sizes", 20);
        {
            let _s = span("stage");
            event("fired", &[("k", "2".to_owned())]);
        }
        let snap = snapshot();
        assert_eq!(snap.counters["words"], 5);
        assert_eq!(snap.counters["rule.disjunction"], 1);
        assert_eq!(snap.gauges["depth"], 4, "gauges are last-write-wins");
        let h = &snap.histograms["sizes"];
        assert_eq!((h.count, h.max), (2, 20));
        assert!(snap.histograms.contains_key("stage.ns"));

        let trace = take_trace();
        assert_eq!(trace.len(), 2, "{trace:?}");
        match &trace[1] {
            TraceEntry::Span { name, .. } => assert_eq!(*name, "stage"),
            other => panic!("span last (closed after event): {other:?}"),
        }
        match &trace[0] {
            TraceEntry::Event { name, fields, .. } => {
                assert_eq!(*name, "fired");
                assert_eq!(fields[0], ("k".to_owned(), "2".to_owned()));
            }
            other => panic!("event first: {other:?}"),
        }
        disable();
    }
}
