//! The `BENCH_*.json` performance-report model: what `perfgate` writes,
//! what `perfgate compare` reads back, and the regression test between the
//! two. Kept here (not in the bench crate) so the serialization lives next
//! to the JSON writer/reader it uses and every later perf PR shares one
//! format.
//!
//! A report is a set of named **phases** (`extract.n2000`, `ingest.n2000.j4`,
//! `idtd`, …), each with wall-clock percentiles over N repetitions and
//! optional throughput, plus counters pulled from the metrics registry and
//! enough host/commit metadata to interpret the numbers later.

use crate::json::{write_key, write_string, Value};
use std::collections::BTreeMap;

/// Wall-clock and throughput statistics for one benchmark phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Number of timed repetitions the percentiles summarize.
    pub reps: u64,
    /// Median wall-clock nanoseconds per repetition.
    pub p50_ns: u64,
    /// 95th-percentile wall-clock nanoseconds per repetition.
    pub p95_ns: u64,
    /// Slowest repetition in nanoseconds.
    pub max_ns: u64,
    /// Documents per second at the median, for corpus-driven phases.
    pub docs_per_sec: Option<f64>,
    /// Megabytes per second at the median, for corpus-driven phases.
    pub mb_per_sec: Option<f64>,
    /// Peak bytes the phase allocated on top of ambient memory (worst
    /// repetition), from the counting allocator. `None` in schema-1
    /// reports and in builds without the `alloc-count` feature.
    pub peak_alloc_bytes: Option<u64>,
}

impl PhaseStats {
    /// Builds stats from raw per-repetition durations, attaching
    /// throughput when the phase processed `docs` documents of `bytes`
    /// total size per repetition.
    pub fn from_samples(samples_ns: &[u64], workload: Option<(u64, u64)>) -> PhaseStats {
        let (p50_ns, p95_ns, max_ns) = percentiles(samples_ns);
        let throughput = |units: f64| {
            if p50_ns == 0 {
                None
            } else {
                Some(units / (p50_ns as f64 / 1e9))
            }
        };
        let (docs_per_sec, mb_per_sec) = match workload {
            Some((docs, bytes)) => (
                throughput(docs as f64),
                throughput(bytes as f64 / (1024.0 * 1024.0)),
            ),
            None => (None, None),
        };
        PhaseStats {
            reps: samples_ns.len() as u64,
            p50_ns,
            p95_ns,
            max_ns,
            docs_per_sec,
            mb_per_sec,
            peak_alloc_bytes: None,
        }
    }
}

/// Nearest-rank p50/p95/max of a sample set (0s when empty) — the same
/// rule the metrics histograms use.
pub fn percentiles(samples: &[u64]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    (pct(0.50), pct(0.95), sorted[sorted.len() - 1])
}

/// The report schema this crate writes. History:
/// 1 — original format (no `schema` field in the JSON);
/// 2 — adds `peak_alloc_bytes` per phase (allocator accounting).
pub const SCHEMA_VERSION: u64 = 2;

/// One persisted performance report (`BENCH_<label>.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report schema version (see [`SCHEMA_VERSION`]). Reports written
    /// before versioning parse as 1.
    pub schema: u64,
    /// The report's label (CLI `--label`, e.g. `baseline` or `ci`).
    pub label: String,
    /// Git commit the numbers were measured at (`unknown` outside a repo).
    pub commit: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available hardware parallelism when measured.
    pub cores: u64,
    /// Seconds since the Unix epoch when the report was written.
    pub created_unix: u64,
    /// Phase name → timing/throughput stats, sorted by name.
    pub phases: BTreeMap<String, PhaseStats>,
    /// Pipeline counters (and worker gauges) from one instrumented run.
    pub counters: BTreeMap<String, u64>,
}

/// Renders a float deterministically for the report (3 decimals).
fn write_f64(out: &mut String, value: f64) {
    out.push_str(&format!("{value:.3}"));
}

impl BenchReport {
    /// The stable JSON form, keys sorted, floats at 3 decimals.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"schema\":{},", self.schema));
        write_key(&mut out, "label");
        write_string(&mut out, &self.label);
        out.push(',');
        write_key(&mut out, "commit");
        write_string(&mut out, &self.commit);
        out.push(',');
        write_key(&mut out, "host");
        out.push('{');
        write_key(&mut out, "os");
        write_string(&mut out, &self.os);
        out.push(',');
        write_key(&mut out, "arch");
        write_string(&mut out, &self.arch);
        out.push_str(&format!(",\"cores\":{}}},", self.cores));
        out.push_str(&format!("\"created_unix\":{},", self.created_unix));
        write_key(&mut out, "phases");
        out.push('{');
        for (i, (name, p)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            write_key(&mut out, name);
            out.push_str(&format!(
                "{{\"reps\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}",
                p.reps, p.p50_ns, p.p95_ns, p.max_ns
            ));
            if let Some(d) = p.docs_per_sec {
                out.push_str(",\"docs_per_sec\":");
                write_f64(&mut out, d);
            }
            if let Some(m) = p.mb_per_sec {
                out.push_str(",\"mb_per_sec\":");
                write_f64(&mut out, m);
            }
            if let Some(peak) = p.peak_alloc_bytes {
                out.push_str(&format!(",\"peak_alloc_bytes\":{peak}"));
            }
            out.push('}');
        }
        out.push_str("},\n");
        write_key(&mut out, "counters");
        out.push('{');
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_key(&mut out, name);
            out.push_str(&value.to_string());
        }
        out.push_str("}}");
        out
    }

    /// Parses a report back from its JSON form.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let v = Value::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let host = v.get("host").ok_or("missing host object")?;
        let mut phases = BTreeMap::new();
        for (name, p) in v
            .get("phases")
            .and_then(Value::as_obj)
            .ok_or("missing phases object")?
        {
            let u64_field = |key: &str| -> Result<u64, String> {
                p.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("phase {name:?}: missing numeric field {key:?}"))
            };
            phases.insert(
                name.clone(),
                PhaseStats {
                    reps: u64_field("reps")?,
                    p50_ns: u64_field("p50_ns")?,
                    p95_ns: u64_field("p95_ns")?,
                    max_ns: u64_field("max_ns")?,
                    docs_per_sec: p.get("docs_per_sec").and_then(Value::as_f64),
                    mb_per_sec: p.get("mb_per_sec").and_then(Value::as_f64),
                    peak_alloc_bytes: p.get("peak_alloc_bytes").and_then(Value::as_u64),
                },
            );
        }
        let mut counters = BTreeMap::new();
        for (name, value) in v
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or("missing counters object")?
        {
            counters.insert(
                name.clone(),
                value
                    .as_u64()
                    .ok_or_else(|| format!("counter {name:?} is not a u64"))?,
            );
        }
        Ok(BenchReport {
            // Reports predating versioning carry no schema field; they
            // are schema 1 by definition, not an error.
            schema: v.get("schema").and_then(Value::as_u64).unwrap_or(1),
            label: str_field("label")?,
            commit: str_field("commit")?,
            os: host
                .get("os")
                .and_then(Value::as_str)
                .ok_or("missing host.os")?
                .to_owned(),
            arch: host
                .get("arch")
                .and_then(Value::as_str)
                .ok_or("missing host.arch")?
                .to_owned(),
            cores: host
                .get("cores")
                .and_then(Value::as_u64)
                .ok_or("missing host.cores")?,
            created_unix: v
                .get("created_unix")
                .and_then(Value::as_u64)
                .ok_or("missing created_unix")?,
            phases,
            counters,
        })
    }
}

/// One metric that got worse than the comparison threshold allows.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// `<phase>.<field>`, e.g. `ingest.n2000.j4.p50_ns`.
    pub metric: String,
    /// The baseline's value.
    pub baseline: f64,
    /// The candidate's value.
    pub candidate: f64,
    /// Signed percentage change from baseline to candidate.
    pub change_pct: f64,
}

/// Time regressions below this absolute delta are ignored regardless of
/// ratio: a 3 µs phase doubling to 6 µs is scheduler noise, not a
/// regression worth failing CI over.
pub const MIN_TIME_DELTA_NS: u64 = 10_000;

/// Memory regressions below this absolute delta are likewise ignored:
/// allocator peaks jitter by a few KiB with thread scheduling, and a
/// 64 KiB swing is below anything the pipeline would call a leak.
pub const MIN_ALLOC_DELTA_BYTES: u64 = 64 * 1024;

/// Compares every phase present in both reports. A regression is a median
/// time that grew, a throughput that shrank, or a peak allocation that
/// grew, by more than `threshold_pct` percent (times must also exceed
/// [`MIN_TIME_DELTA_NS`], peaks [`MIN_ALLOC_DELTA_BYTES`]). Memory is
/// only compared when both reports carry it — a schema-1 baseline simply
/// exercises no memory gate. Returns the offending metrics, sorted by
/// phase name; empty means the candidate passes the gate.
pub fn compare(
    baseline: &BenchReport,
    candidate: &BenchReport,
    threshold_pct: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let factor = 1.0 + threshold_pct / 100.0;
    for (name, base) in &baseline.phases {
        let Some(cand) = candidate.phases.get(name) else {
            continue;
        };
        let (b, c) = (base.p50_ns as f64, cand.p50_ns as f64);
        if c > b * factor && cand.p50_ns.saturating_sub(base.p50_ns) > MIN_TIME_DELTA_NS {
            regressions.push(Regression {
                metric: format!("{name}.p50_ns"),
                baseline: b,
                candidate: c,
                change_pct: change_pct(b, c),
            });
        }
        for (field, b, c) in [
            ("docs_per_sec", base.docs_per_sec, cand.docs_per_sec),
            ("mb_per_sec", base.mb_per_sec, cand.mb_per_sec),
        ] {
            let (Some(b), Some(c)) = (b, c) else { continue };
            // Throughput is inverse time: a drop to 1/factor of baseline
            // is the same size of regression as time growing by factor.
            if c < b / factor && b > 0.0 {
                regressions.push(Regression {
                    metric: format!("{name}.{field}"),
                    baseline: b,
                    candidate: c,
                    change_pct: change_pct(b, c),
                });
            }
        }
        if let (Some(b), Some(c)) = (base.peak_alloc_bytes, cand.peak_alloc_bytes) {
            if (c as f64) > (b as f64) * factor && c.saturating_sub(b) > MIN_ALLOC_DELTA_BYTES {
                regressions.push(Regression {
                    metric: format!("{name}.peak_alloc_bytes"),
                    baseline: b as f64,
                    candidate: c as f64,
                    change_pct: change_pct(b as f64, c as f64),
                });
            }
        }
    }
    regressions
}

/// Parses the `.jN` naming convention of parallel phases
/// (`ingest.n300.j4`, `ingest.mb.j8`) and of the metric names derived
/// from them (`ingest.mb.j4.p50_ns`): returns the job count of the first
/// `j<digits>` dot-segment, or `None` for serial phases. Callers use this
/// to treat parallel-phase regressions as advisory when the baseline was
/// measured on a host with a different core count — scaling numbers do
/// not transfer across hosts, serial ones roughly do.
pub fn phase_jobs(name: &str) -> Option<u64> {
    name.split('.').find_map(|seg| {
        let digits = seg.strip_prefix('j')?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    })
}

fn change_pct(baseline: f64, candidate: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (candidate - baseline) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(p50_ms: u64) -> PhaseStats {
        PhaseStats {
            reps: 5,
            p50_ns: p50_ms * 1_000_000,
            p95_ns: p50_ms * 1_200_000,
            max_ns: p50_ms * 1_500_000,
            docs_per_sec: Some(1000.0 / p50_ms as f64),
            mb_per_sec: Some(10.0 / p50_ms as f64),
            peak_alloc_bytes: Some(p50_ms * 1024 * 1024),
        }
    }

    fn report() -> BenchReport {
        BenchReport {
            schema: SCHEMA_VERSION,
            label: "baseline".into(),
            commit: "abc123".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            cores: 8,
            created_unix: 1_754_000_000,
            phases: [
                ("idtd".to_owned(), phase(2)),
                ("ingest.n2000.j4".to_owned(), phase(40)),
            ]
            .into(),
            counters: [("engine.documents".to_owned(), 2000u64)].into(),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let parsed = BenchReport::parse(&r.json()).unwrap();
        assert_eq!(parsed, r);
        // And the re-serialization is byte-identical (stable format).
        assert_eq!(parsed.json(), r.json());
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse("{\"label\":\"x\"}").is_err());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = report();
        assert!(compare(&r, &r, 15.0).is_empty());
    }

    #[test]
    fn injected_2x_time_regression_is_caught() {
        let base = report();
        let mut worse = base.clone();
        let p = worse.phases.get_mut("ingest.n2000.j4").unwrap();
        p.p50_ns *= 2;
        p.docs_per_sec = p.docs_per_sec.map(|d| d / 2.0);
        p.mb_per_sec = p.mb_per_sec.map(|m| m / 2.0);
        let regressions = compare(&base, &worse, 15.0);
        let metrics: Vec<&str> = regressions.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"ingest.n2000.j4.p50_ns"), "{metrics:?}");
        assert!(
            metrics.contains(&"ingest.n2000.j4.docs_per_sec"),
            "{metrics:?}"
        );
        let time = &regressions[0];
        assert!((time.change_pct - 100.0).abs() < 1e-9, "{time:?}");
        // A looser-but-still-sane threshold (CI's 50%) also catches 2x.
        assert!(!compare(&base, &worse, 50.0).is_empty());
        // A threshold above the regression does not.
        assert!(compare(&base, &worse, 150.0).is_empty());
    }

    #[test]
    fn improvements_and_noise_are_not_regressions() {
        let base = report();
        let mut faster = base.clone();
        faster.phases.get_mut("idtd").unwrap().p50_ns /= 2;
        assert!(compare(&base, &faster, 15.0).is_empty(), "faster is fine");

        // A big ratio on a tiny absolute delta is ignored (noise floor).
        let mut tiny_base = base.clone();
        let mut tiny_cand = base.clone();
        tiny_base.phases.get_mut("idtd").unwrap().p50_ns = 3_000;
        let cand_phase = tiny_cand.phases.get_mut("idtd").unwrap();
        cand_phase.p50_ns = 9_000;
        cand_phase.docs_per_sec = None;
        cand_phase.mb_per_sec = None;
        tiny_base.phases.get_mut("idtd").unwrap().docs_per_sec = None;
        tiny_base.phases.get_mut("idtd").unwrap().mb_per_sec = None;
        assert!(compare(&tiny_base, &tiny_cand, 15.0).is_empty());
    }

    #[test]
    fn phases_only_in_one_report_are_skipped() {
        let base = report();
        let mut cand = report();
        cand.phases.remove("idtd");
        cand.phases.insert("brand-new".to_owned(), phase(1));
        assert!(compare(&base, &cand, 15.0).is_empty());
    }

    #[test]
    fn schema_1_reports_parse_and_skip_the_memory_gate() {
        // A pre-versioning report: no schema field, no peak_alloc_bytes.
        let legacy = "{\"label\":\"old\",\"commit\":\"abc\",\
             \"host\":{\"os\":\"linux\",\"arch\":\"x86_64\",\"cores\":4},\
             \"created_unix\":1754000000,\
             \"phases\":{\"idtd\":{\"reps\":5,\"p50_ns\":2000000,\
             \"p95_ns\":2400000,\"max_ns\":3000000}},\
             \"counters\":{}}";
        let base = BenchReport::parse(legacy).expect("legacy reports must parse");
        assert_eq!(base.schema, 1);
        assert_eq!(base.phases["idtd"].peak_alloc_bytes, None);
        // A schema-2 candidate with huge allocations still passes: no
        // baseline memory to compare against means no memory gate.
        let mut cand = base.clone();
        cand.schema = SCHEMA_VERSION;
        cand.phases.get_mut("idtd").unwrap().peak_alloc_bytes = Some(1 << 40);
        assert!(compare(&base, &cand, 15.0).is_empty());
    }

    #[test]
    fn memory_regressions_are_caught_and_noise_is_not() {
        let base = report();
        let mut bloated = base.clone();
        bloated.phases.get_mut("idtd").unwrap().peak_alloc_bytes =
            base.phases["idtd"].peak_alloc_bytes.map(|b| b * 3);
        let regressions = compare(&base, &bloated, 15.0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert_eq!(regressions[0].metric, "idtd.peak_alloc_bytes");
        assert!((regressions[0].change_pct - 200.0).abs() < 1e-9);

        // Large ratio on a tiny absolute delta: under the noise floor.
        let mut tiny_base = base.clone();
        let mut tiny_cand = base.clone();
        tiny_base.phases.get_mut("idtd").unwrap().peak_alloc_bytes = Some(1024);
        tiny_cand.phases.get_mut("idtd").unwrap().peak_alloc_bytes = Some(40 * 1024);
        assert!(compare(&tiny_base, &tiny_cand, 15.0).is_empty());

        // Shrinking memory is an improvement, never a regression.
        let mut leaner = base.clone();
        leaner.phases.get_mut("idtd").unwrap().peak_alloc_bytes = Some(1);
        assert!(compare(&base, &leaner, 15.0).is_empty());
    }

    #[test]
    fn phase_jobs_parses_the_jn_convention() {
        assert_eq!(phase_jobs("ingest.n300.j4"), Some(4));
        assert_eq!(phase_jobs("ingest.mb.j8"), Some(8));
        assert_eq!(phase_jobs("ingest.mb.j1"), Some(1));
        // Derived metric names keep their phase's job count.
        assert_eq!(phase_jobs("ingest.mb.j4.p50_ns"), Some(4));
        assert_eq!(phase_jobs("ingest.mb.j2.docs_per_sec"), Some(2));
        // Serial phases and near-misses are not parallel.
        assert_eq!(phase_jobs("extract.n300"), None);
        assert_eq!(phase_jobs("idtd"), None);
        assert_eq!(phase_jobs("parse.n300.p50_ns"), None);
        assert_eq!(phase_jobs("jitter.j"), None);
        assert_eq!(phase_jobs("jx4.phase"), None);
    }

    #[test]
    fn percentile_rule_matches_histograms() {
        assert_eq!(percentiles(&[]), (0, 0, 0));
        assert_eq!(percentiles(&[7]), (7, 7, 7));
        let samples: Vec<u64> = (1..=100).collect();
        let (p50, p95, max) = percentiles(&samples);
        assert_eq!(max, 100);
        assert!((48..=52).contains(&p50), "{p50}");
        assert!((93..=97).contains(&p95), "{p95}");
    }

    #[test]
    fn from_samples_computes_throughput_at_the_median() {
        let stats = PhaseStats::from_samples(&[2_000_000_000], Some((100, 1024 * 1024)));
        assert_eq!(stats.p50_ns, 2_000_000_000);
        assert_eq!(stats.docs_per_sec, Some(50.0));
        assert_eq!(stats.mb_per_sec, Some(0.5));
        let bare = PhaseStats::from_samples(&[10, 20, 30], None);
        assert_eq!(bare.reps, 3);
        assert_eq!(bare.docs_per_sec, None);
    }
}
