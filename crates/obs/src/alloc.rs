//! Allocator-level memory accounting: a counting [`GlobalAlloc`]
//! wrapper over [`System`] that tracks live, peak, and total allocated
//! bytes behind a runtime gate.
//!
//! Two gates keep this free when unused:
//!
//! - **Compile-time**: the counting fast path only exists under the
//!   `alloc-count` cargo feature. Without it, [`CountingAlloc`] forwards
//!   straight to [`System`] — not even an atomic load on the malloc
//!   path — so binaries that never install it (or install it with the
//!   feature off) pay nothing.
//! - **Runtime**: even when compiled in, counting is off until
//!   [`enable`] flips one relaxed [`AtomicBool`], so a binary with the
//!   allocator installed can still run unmeasured phases.
//!
//! Live bytes are tracked as a signed counter: allocations made before
//! [`enable`] and freed after would otherwise underflow an unsigned
//! one. [`stats`] clamps the reported value at zero.
//!
//! Install in a binary with:
//!
//! ```ignore
//! #[cfg(feature = "alloc-count")]
//! #[global_allocator]
//! static ALLOC: dtdinfer_obs::alloc::CountingAlloc = dtdinfer_obs::alloc::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Net bytes currently live (alloc − dealloc), signed; see module docs.
static LIVE: AtomicI64 = AtomicI64::new(0);
/// High-water mark of `LIVE` since the last [`reset`] / [`phase_begin`].
static PEAK: AtomicI64 = AtomicI64::new(0);
/// Cumulative bytes ever allocated while enabled. Monotone.
static TOTAL: AtomicU64 = AtomicU64::new(0);
/// Cumulative allocation calls while enabled. Monotone.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The counting allocator. Zero-sized; all state is in module statics so
/// the type can be a `static` item itself.
pub struct CountingAlloc;

/// Turns counting on. Cheap to call repeatedly.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns counting off. Counters keep their values for later [`stats`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether counting is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether this build carries the counting fast path at all. When this
/// is `false`, [`enable`] is accepted but the allocator never reports
/// anything (all stats stay zero).
pub const fn compiled_in() -> bool {
    cfg!(feature = "alloc-count")
}

/// A point-in-time copy of the allocator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently live (clamped at zero; see module docs).
    pub live_bytes: u64,
    /// High-water mark of live bytes since the last reset.
    pub peak_bytes: u64,
    /// Total bytes ever allocated while enabled. Monotone.
    pub total_bytes: u64,
    /// Total allocation calls while enabled. Monotone.
    pub allocations: u64,
}

/// Reads the current counters.
pub fn stats() -> AllocStats {
    AllocStats {
        live_bytes: u64::try_from(LIVE.load(Ordering::Relaxed)).unwrap_or(0),
        peak_bytes: u64::try_from(PEAK.load(Ordering::Relaxed)).unwrap_or(0),
        total_bytes: TOTAL.load(Ordering::Relaxed),
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
    }
}

/// Zeroes every counter. For bench harnesses between repetitions.
pub fn reset() {
    LIVE.store(0, Ordering::Relaxed);
    PEAK.store(0, Ordering::Relaxed);
    TOTAL.store(0, Ordering::Relaxed);
    ALLOCATIONS.store(0, Ordering::Relaxed);
}

/// Marks the start of a measured phase: collapses the peak down to the
/// current live level so the returned mark's [`PhaseMark::peak_delta`]
/// reports only memory the phase itself added. Take the mark on the
/// measuring thread while no other thread allocates heavily, or the
/// delta attributes concurrent allocations to this phase.
pub fn phase_begin() -> PhaseMark {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    PhaseMark {
        live_at_start: live,
    }
}

/// Start-of-phase state captured by [`phase_begin`].
#[derive(Debug, Clone, Copy)]
pub struct PhaseMark {
    live_at_start: i64,
}

impl PhaseMark {
    /// Peak bytes the phase added on top of what was already live when
    /// it began. Saturates at zero if the phase only freed memory.
    pub fn peak_delta(&self) -> u64 {
        let peak = PEAK.load(Ordering::Relaxed);
        u64::try_from(peak.saturating_sub(self.live_at_start)).unwrap_or(0)
    }
}

/// Allocator hook: records `size` bytes allocated. Public so the
/// `GlobalAlloc` impl and tests share one code path; nothing else
/// should call it. Must stay allocation-free (it runs inside malloc).
#[inline]
pub fn note_alloc(size: usize) {
    let size = size as i64;
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
    TOTAL.fetch_add(size as u64, Ordering::Relaxed);
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Allocator hook: records `size` bytes freed. See [`note_alloc`].
#[inline]
pub fn note_dealloc(size: usize) {
    LIVE.fetch_sub(size as i64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        #[cfg(feature = "alloc-count")]
        if !ptr.is_null() && is_enabled() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        #[cfg(feature = "alloc-count")]
        if is_enabled() {
            note_dealloc(layout.size());
        }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        #[cfg(feature = "alloc-count")]
        if !ptr.is_null() && is_enabled() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        #[cfg(feature = "alloc-count")]
        if !new_ptr.is_null() && is_enabled() {
            // Model as free-then-alloc so TOTAL counts the new block and
            // LIVE nets out to the size change.
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        new_ptr
    }
}

/// Publishes the current allocator counters as gauges on the global
/// metrics registry (`alloc.live_bytes` etc.). No-op rows of zero when
/// the feature is compiled out — callers don't need to gate.
pub fn publish_gauges() {
    let s = stats();
    crate::gauge("alloc.live_bytes", s.live_bytes);
    crate::gauge("alloc.peak_bytes", s.peak_bytes);
    crate::gauge("alloc.total_bytes", s.total_bytes);
    crate::gauge("alloc.allocations", s.allocations);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The counters are process globals; every test that touches them
    /// serializes on this lock (and none of the module's own state leaks
    /// between them because each resets first).
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default)
            .lock()
            .expect("alloc test lock poisoned")
    }

    #[test]
    fn hooks_track_live_peak_and_total() {
        let _g = guard();
        reset();
        note_alloc(100);
        note_alloc(200);
        note_dealloc(100);
        note_alloc(50);
        let s = stats();
        assert_eq!(s.live_bytes, 250);
        assert_eq!(s.peak_bytes, 300, "peak is the high-water mark");
        assert_eq!(s.total_bytes, 350, "total never decreases");
        assert_eq!(s.allocations, 3);
        note_dealloc(250);
        assert_eq!(stats().live_bytes, 0);
        assert_eq!(stats().peak_bytes, 300, "dealloc leaves peak alone");
    }

    #[test]
    fn pre_enable_frees_clamp_instead_of_underflowing() {
        let _g = guard();
        reset();
        // A block allocated before counting started gets freed under it.
        note_dealloc(4096);
        let s = stats();
        assert_eq!(s.live_bytes, 0, "clamped, not wrapped to u64::MAX");
        note_alloc(100);
        // The signed counter is still at -3996; reported live stays 0.
        assert_eq!(stats().live_bytes, 0);
        assert_eq!(stats().total_bytes, 100, "total is unaffected by skew");
    }

    #[test]
    fn phase_marks_report_peak_deltas() {
        let _g = guard();
        reset();
        note_alloc(1000); // ambient memory from before the phase
        let mark = phase_begin();
        note_alloc(5000);
        note_dealloc(5000);
        note_alloc(2000);
        assert_eq!(mark.peak_delta(), 5000, "transient spike is the peak");
        // A phase that only frees reports zero, not a wrapped value.
        let mark = phase_begin();
        note_dealloc(2000);
        assert_eq!(mark.peak_delta(), 0);
    }

    #[test]
    fn runtime_gate_flips() {
        let _g = guard();
        enable();
        assert!(is_enabled());
        disable();
        assert!(!is_enabled());
    }

    #[test]
    fn publish_gauges_lands_in_registry() {
        let _g = guard();
        let _r = crate::global_test_lock();
        reset();
        note_alloc(640);
        crate::enable(true, false);
        crate::metrics::registry().reset();
        publish_gauges();
        let snap = crate::snapshot();
        crate::disable();
        assert_eq!(snap.gauges.get("alloc.peak_bytes"), Some(&640));
        assert_eq!(snap.gauges.get("alloc.live_bytes"), Some(&640));
    }
}
