//! OpenMetrics / Prometheus text exposition of a metrics snapshot — the
//! format a future `dtdinfer serve` daemon will answer `/metrics` with,
//! available today via `--metrics-format openmetrics`.
//!
//! The mapping from the registry's dotted names:
//!
//! * counters `a.b.c` → `a_b_c_total` with `# TYPE ... counter`;
//! * gauges → `# TYPE ... gauge` (no suffix);
//! * histograms → `# TYPE ... summary`: `{quantile="0.5"}` and
//!   `{quantile="0.95"}` samples from the reservoir plus exact `_count`
//!   and `_sum`, and a companion `<name>_max` gauge (summaries have no
//!   max slot, but ours is exact and too useful to drop).
//!
//! Output is sorted by metric name, ends with `# EOF`, and every emitted
//! line round-trips through [`validate`], the same structural check the
//! CI `obs-smoke` job and `dtdinfer omlint` run.

use crate::metrics::{split_series_key, HistogramSummary, MetricsSnapshot};
use std::collections::{BTreeMap, BTreeSet};

/// Turns a dotted registry name into a legal OpenMetrics metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Dots and every other illegal character
/// become underscores; a leading digit gets an underscore prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if legal {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Parses an OpenMetrics label block — the text between `{` and `}` —
/// into key/value pairs. Values must be double-quoted; `\\`, `\"`, and
/// `\n` escapes are decoded, and commas inside quotes do not split.
/// Returns the first problem found, so [`validate`] can surface it.
pub fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = &rest[..eq];
        if key.is_empty() {
            return Err("empty label name".to_owned());
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value for {key:?} is not quoted"));
        }
        let mut value = String::new();
        let mut closed_at = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices().skip(1) {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    '\\' => '\\',
                    '"' => '"',
                    other => return Err(format!("unknown escape '\\{other}' in label {key:?}")),
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                closed_at = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = closed_at.ok_or_else(|| format!("unterminated value for label {key:?}"))?;
        pairs.push((key.to_owned(), value));
        rest = &rest[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            if stripped.is_empty() {
                return Err("trailing comma in label set".to_owned());
            }
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels, found {rest:?}"));
        }
    }
    Ok(pairs)
}

/// Renders pairs back into a `{k="v",…}` block (empty string for no
/// labels), sanitizing keys and re-escaping values.
fn render_labels(pairs: &[(String, String)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize_name(k));
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Splices one more label into an already-rendered block (`""` or
/// `{…}`) — how the summary quantile joins a series' own labels.
fn with_label(rendered: &str, key: &str, value: &str) -> String {
    match rendered.strip_suffix('}') {
        Some(body) => format!("{body},{key}=\"{value}\"}}"),
        None => format!("{{{key}=\"{value}\"}}"),
    }
}

/// Splits a registry series key into its raw metric name and rendered
/// OpenMetrics label block. A key whose label block fails to parse — a
/// name that merely contains `{` — degrades to an unlabeled series with
/// the whole key as its (sanitized) name rather than emitting broken
/// syntax.
fn split_rendered(key: &str) -> (String, String) {
    let (name, block) = split_series_key(key);
    match block {
        None => (name.to_owned(), String::new()),
        Some(block) => match parse_labels(block) {
            Ok(pairs) => (name.to_owned(), render_labels(&pairs)),
            Err(_) => (key.to_owned(), String::new()),
        },
    }
}

/// One family to emit: its TYPE and its sample lines (already rendered
/// name + optional labels + value).
struct Family {
    kind: &'static str,
    lines: Vec<String>,
}

/// Renders the snapshot in the OpenMetrics text format (ending in
/// `# EOF`). Name collisions after sanitization (e.g. `a.b` and `a_b`)
/// are disambiguated with a numeric suffix so the output never declares
/// the same family twice.
pub fn openmetrics(snap: &MetricsSnapshot) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let claim = |families: &mut BTreeMap<String, Family>, base: String| -> String {
        if !families.contains_key(&base) {
            return base;
        }
        let mut n = 2usize;
        loop {
            let candidate = format!("{base}_{n}");
            if !families.contains_key(&candidate) {
                return candidate;
            }
            n += 1;
        }
    };
    // Group series by raw metric name first, so every labeled variant of
    // one metric lands under a single TYPE declaration. Group members
    // stay in registry order (sorted by full series key: the unlabeled
    // series first, then labels lexicographically), so output is stable.
    let group = |entries: Vec<(&String, String)>| -> BTreeMap<String, Vec<(String, String)>> {
        let mut groups: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
        for (key, value) in entries {
            let (name, labels) = split_rendered(key);
            groups.entry(name).or_default().push((labels, value));
        }
        groups
    };
    let counters = group(
        snap.counters
            .iter()
            .map(|(k, v)| (k, v.to_string()))
            .collect(),
    );
    for (name, series) in &counters {
        let family = claim(&mut families, format!("{}_total", sanitize_name(name)));
        let lines = series
            .iter()
            .map(|(labels, v)| format!("{family}{labels} {v}"))
            .collect();
        families.insert(
            family,
            Family {
                kind: "counter",
                lines,
            },
        );
    }
    let gauges = group(
        snap.gauges
            .iter()
            .map(|(k, v)| (k, v.to_string()))
            .collect(),
    );
    for (name, series) in &gauges {
        let family = claim(&mut families, sanitize_name(name));
        let lines = series
            .iter()
            .map(|(labels, v)| format!("{family}{labels} {v}"))
            .collect();
        families.insert(
            family,
            Family {
                kind: "gauge",
                lines,
            },
        );
    }
    let mut hist_groups: BTreeMap<String, Vec<(String, &HistogramSummary)>> = BTreeMap::new();
    for (key, h) in &snap.histograms {
        let (name, labels) = split_rendered(key);
        hist_groups.entry(name).or_default().push((labels, h));
    }
    for (name, series) in &hist_groups {
        let family = claim(&mut families, sanitize_name(name));
        let mut lines = Vec::with_capacity(series.len() * 4);
        for (labels, h) in series {
            // Quantiles come from the uniform reservoir; count and sum
            // are exact. An empty summary (possible after a reset race)
            // emits only the exact zeros — a 0 quantile would be
            // indistinguishable from a real observation of 0.
            if h.count > 0 {
                lines.push(format!(
                    "{family}{} {}",
                    with_label(labels, "quantile", "0.5"),
                    h.p50
                ));
                lines.push(format!(
                    "{family}{} {}",
                    with_label(labels, "quantile", "0.95"),
                    h.p95
                ));
            }
            lines.push(format!("{family}_count{labels} {}", h.count));
            lines.push(format!("{family}_sum{labels} {}", h.sum));
        }
        families.insert(
            family.clone(),
            Family {
                kind: "summary",
                lines,
            },
        );
        let max_family = claim(&mut families, format!("{family}_max"));
        let lines = series
            .iter()
            .map(|(labels, h)| format!("{max_family}{labels} {}", h.max))
            .collect();
        families.insert(
            max_family,
            Family {
                kind: "gauge",
                lines,
            },
        );
    }
    let mut out = String::new();
    for (family, f) in &families {
        out.push_str(&format!("# TYPE {family} {}\n", f.kind));
        for line in &f.lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Structural validation of OpenMetrics text: legal metric names, every
/// sample preceded by a TYPE declaration of its family, parseable values,
/// counters/quantiles non-negative, well-formed label sets (quoted,
/// escape-aware), no duplicate family declarations, no duplicate series
/// (same sample name + label set twice), and a final `# EOF`. Returns the
/// first problem found.
pub fn validate(text: &str) -> Result<(), String> {
    let mut declared: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut saw_eof = false;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if saw_eof {
            return Err(format!("line {n}: content after # EOF"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if line.is_empty() {
            return Err(format!("line {n}: blank line"));
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed TYPE line"));
            };
            if !is_legal_name(name) {
                return Err(format!("line {n}: illegal family name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "info") {
                return Err(format!("line {n}: unknown family type {kind:?}"));
            }
            if declared.insert(name.to_owned(), kind.to_owned()).is_some() {
                return Err(format!("line {n}: family {name:?} declared twice"));
            }
            continue;
        }
        if line.starts_with('#') {
            // Other comments (HELP, UNIT) are fine.
            continue;
        }
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (name_and_labels, None),
        };
        if !is_legal_name(name) {
            return Err(format!("line {n}: illegal metric name {name:?}"));
        }
        let parsed: f64 = value
            .parse()
            .map_err(|e| format!("line {n}: bad sample value {value:?}: {e}"))?;
        // The family is the sample name itself, or the name with a
        // counter/summary/histogram suffix stripped — whichever was
        // declared. (Our own writer declares counters as `x_total`;
        // classic Prometheus declares `x` and samples `x_total`. Accept
        // both.)
        let family = std::iter::once(name)
            .chain(
                ["_count", "_sum", "_total", "_bucket"]
                    .iter()
                    .filter_map(|suffix| name.strip_suffix(suffix)),
            )
            .find(|candidate| declared.contains_key(*candidate))
            .ok_or_else(|| format!("line {n}: sample {name:?} has no TYPE declaration"))?;
        let kind = &declared[family];
        if kind == "counter" && parsed < 0.0 {
            return Err(format!("line {n}: counter {name:?} is negative"));
        }
        let mut pairs = match labels {
            Some(labels) => parse_labels(labels).map_err(|e| format!("line {n}: {e}"))?,
            None => Vec::new(),
        };
        for (key, _) in &pairs {
            if !is_legal_name(key) {
                return Err(format!("line {n}: illegal label name {key:?}"));
            }
        }
        // Series identity is the sample name plus its label set regardless
        // of label order; emitting it twice means a torn or duplicated
        // scrape.
        pairs.sort();
        if !seen_series.insert(format!("{name}{pairs:?}")) {
            return Err(format!("line {n}: duplicate series for {name:?}"));
        }
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_owned());
    }
    Ok(())
}

fn is_legal_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = Registry::default();
        r.count("engine.documents", 300);
        r.count("core.rewrite.rule.self-loop", 2);
        r.gauge_with("engine_worker_busy_ns", &[("worker", "0")], 123);
        r.observe("engine.ingest.ns", 1_000);
        r.observe("engine.ingest.ns", 3_000);
        r.snapshot()
    }

    #[test]
    fn exposition_is_valid_and_sorted() {
        let text = openmetrics(&sample_snapshot());
        validate(&text).expect(&text);
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("# TYPE engine_documents_total counter\n"));
        assert!(text.contains("engine_documents_total 300\n"));
        assert!(text.contains("# TYPE core_rewrite_rule_self_loop_total counter\n"));
        assert!(text.contains("# TYPE engine_worker_busy_ns gauge\n"));
        assert!(text.contains("engine_worker_busy_ns{worker=\"0\"} 123\n"));
        assert!(text.contains("# TYPE engine_ingest_ns summary\n"));
        assert!(text.contains("engine_ingest_ns{quantile=\"0.5\"}"));
        assert!(text.contains("engine_ingest_ns_count 2\n"));
        assert!(text.contains("engine_ingest_ns_sum 4000\n"));
        assert!(text.contains("# TYPE engine_ingest_ns_max gauge\n"));
        assert!(text.contains("engine_ingest_ns_max 3000\n"));
        // Declarations come in sorted order.
        let core = text.find("core_rewrite").unwrap();
        let engine = text.find("engine_documents").unwrap();
        assert!(core < engine);
    }

    #[test]
    fn empty_snapshot_is_just_eof() {
        let text = openmetrics(&MetricsSnapshot::default());
        assert_eq!(text, "# EOF\n");
        validate(&text).unwrap();
    }

    #[test]
    fn empty_summary_emits_no_quantiles() {
        let mut snap = MetricsSnapshot::default();
        snap.histograms.insert(
            "h".to_owned(),
            crate::HistogramSummary {
                count: 0,
                sum: 0,
                max: 0,
                p50: 0,
                p95: 0,
            },
        );
        let text = openmetrics(&snap);
        validate(&text).expect(&text);
        assert!(!text.contains("quantile"), "{text}");
        assert!(text.contains("h_count 0\n"));
    }

    #[test]
    fn sanitize_handles_hostile_names() {
        assert_eq!(sanitize_name("a.b-c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x1"), "ok_name:x1");
        assert_eq!(sanitize_name("späce é"), "sp_ce__");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn sanitization_collisions_are_disambiguated() {
        let r = Registry::default();
        r.count("a.b", 1);
        r.count("a_b", 2);
        let text = openmetrics(&r.snapshot());
        validate(&text).expect(&text);
        assert!(text.contains("a_b_total 1\n"));
        assert!(text.contains("a_b_total_2 2\n"));
    }

    #[test]
    fn labeled_series_share_one_family_declaration() {
        let r = Registry::default();
        r.count_with(
            "serve.http.requests",
            &[("route", "/dtd"), ("status_class", "2xx")],
            7,
        );
        r.count_with(
            "serve.http.requests",
            &[("route", "/metrics"), ("status_class", "2xx")],
            2,
        );
        r.count("serve.http.requests", 9);
        r.gauge_with("serve.session.documents", &[("session", "books")], 12);
        r.observe_with("serve.http.request_ns", &[("route", "/dtd")], 100);
        r.observe_with("serve.http.request_ns", &[("route", "/metrics")], 300);
        let text = openmetrics(&r.snapshot());
        validate(&text).expect(&text);
        assert_eq!(
            text.matches("# TYPE serve_http_requests_total counter")
                .count(),
            1,
            "all label variants share one declaration: {text}"
        );
        assert!(text.contains("serve_http_requests_total{route=\"/dtd\",status_class=\"2xx\"} 7\n"));
        assert!(
            text.contains("serve_http_requests_total 9\n"),
            "unlabeled kept"
        );
        assert!(text.contains("serve_session_documents{session=\"books\"} 12\n"));
        assert!(text.contains("serve_http_request_ns{route=\"/dtd\",quantile=\"0.5\"} 100\n"));
        assert!(text.contains("serve_http_request_ns_count{route=\"/dtd\"} 1\n"));
        assert!(text.contains("serve_http_request_ns_sum{route=\"/metrics\"} 300\n"));
        assert!(text.contains("serve_http_request_ns_max{route=\"/dtd\"} 100\n"));
    }

    #[test]
    fn hostile_label_values_round_trip_escaped() {
        let r = Registry::default();
        r.count_with("m", &[("k", "a\"b\\c\nd,e{f}")], 1);
        let text = openmetrics(&r.snapshot());
        validate(&text).expect(&text);
        assert!(
            text.contains("m_total{k=\"a\\\"b\\\\c\\nd,e{f}\"} 1\n"),
            "escapes must survive exposition: {text}"
        );
    }

    #[test]
    fn route_template_braces_are_legal_label_values() {
        let r = Registry::default();
        r.count_with(
            "serve.http.requests",
            &[
                ("route", "/sessions/{name}/ingest"),
                ("status_class", "2xx"),
            ],
            3,
        );
        let text = openmetrics(&r.snapshot());
        validate(&text).expect(&text);
        assert!(text.contains("{route=\"/sessions/{name}/ingest\",status_class=\"2xx\"} 3\n"));
    }

    #[test]
    fn parse_labels_handles_escapes_and_rejects_junk() {
        assert_eq!(parse_labels("").unwrap(), vec![]);
        assert_eq!(
            parse_labels("a=\"1\",b=\"x,y\"").unwrap(),
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "x,y".to_owned())
            ],
            "commas inside quotes must not split"
        );
        assert_eq!(
            parse_labels("k=\"a\\\"b\\\\c\\nd\"").unwrap(),
            vec![("k".to_owned(), "a\"b\\c\nd".to_owned())]
        );
        for bad in [
            "novalue",
            "k=unquoted",
            "k=\"open",
            "k=\"v\"x=\"y\"",
            "k=\"v\",",
            "=\"v\"",
            "k=\"\\q\"",
        ] {
            assert!(parse_labels(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn validate_rejects_duplicate_series() {
        let dup = "# TYPE x counter\nx_total{a=\"1\"} 1\nx_total{a=\"1\"} 2\n# EOF\n";
        assert!(validate(dup).unwrap_err().contains("duplicate series"));
        let reordered =
            "# TYPE x counter\nx_total{a=\"1\",b=\"2\"} 1\nx_total{b=\"2\",a=\"1\"} 2\n# EOF\n";
        assert!(
            validate(reordered).is_err(),
            "label order must not hide duplicates"
        );
        let ok = "# TYPE x counter\nx_total{a=\"1\"} 1\nx_total{a=\"2\"} 2\nx_total 3\n# EOF\n";
        validate(ok).expect("distinct label sets are distinct series");
    }

    #[test]
    fn validate_rejects_malformed_text() {
        for (bad, why) in [
            ("engine_documents_total 1\n# EOF\n", "undeclared family"),
            ("# TYPE x counter\nx_total 1\n", "missing EOF"),
            (
                "# TYPE x counter\n# TYPE x counter\n# EOF\n",
                "double declaration",
            ),
            ("# TYPE 9x counter\n# EOF\n", "illegal name"),
            ("# TYPE x widget\n# EOF\n", "unknown type"),
            ("# TYPE x gauge\nx nope\n# EOF\n", "bad value"),
            ("# TYPE x counter\nx_total -4\n# EOF\n", "negative counter"),
            (
                "# TYPE x summary\nx{quantile=0.5} 1\n# EOF\n",
                "unquoted label",
            ),
            ("# EOF\ntrailing 1\n", "content after EOF"),
        ] {
            assert!(validate(bad).is_err(), "{why}: {bad:?}");
        }
    }

    #[test]
    fn validate_accepts_the_real_pipeline_shape() {
        let r = Registry::default();
        for i in 0..40 {
            r.count("engine.documents", 1);
            r.observe("engine.shard.duration_ns", 100 + i);
        }
        r.gauge("engine.ingest.peak_bytes_in_flight", 964);
        let text = openmetrics(&r.snapshot());
        validate(&text).expect(&text);
    }
}
