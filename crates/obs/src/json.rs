//! A minimal JSON writer — just enough for the stable serialization of
//! metrics snapshots and trace logs, with no dependencies.

/// Appends `s` to `out` as a JSON string literal (with escaping).
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `key: ` (the key string plus colon) to `out`.
pub fn write_key(out: &mut String, key: &str) {
    write_string(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn plain_strings_pass_through() {
        let mut out = String::new();
        write_string(&mut out, "core.rewrite.rule.disjunction");
        assert_eq!(out, "\"core.rewrite.rule.disjunction\"");
    }
}
