//! A minimal JSON writer and reader — just enough for the stable
//! serialization of metrics snapshots and trace logs, and for parsing the
//! `BENCH_*.json` reports back in `perfgate compare`, with no
//! dependencies.

use std::collections::BTreeMap;

/// Appends `s` to `out` as a JSON string literal (with escaping).
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `key: ` (the key string plus colon) to `out`.
pub fn write_key(out: &mut String, key: &str) {
    write_string(out, key);
    out.push(':');
}

/// A parsed JSON value. Numbers are kept as `f64` — every number this
/// workspace serializes (counters, nanosecond percentiles, throughputs)
/// stays well inside `f64`'s 2^53 exact-integer range.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys sorted (JSON objects are unordered anyway).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The object form, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The array form, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string form, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric form, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric form rounded to u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` on anything else).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|map| map.get(key))
    }
}

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogate pairs are not emitted by this
                            // workspace's writer; reject rather than
                            // silently corrupt.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point \\u{code:04x}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn plain_strings_pass_through() {
        let mut out = String::new();
        write_string(&mut out, "core.rewrite.rule.disjunction");
        assert_eq!(out, "\"core.rewrite.rule.disjunction\"");
    }

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(
            "{\"a\": [1, -2.5, 1e3], \"b\": {\"c\": \"x\\ny\"}, \"d\": true, \"e\": null}",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_the_writer_output() {
        let mut written = String::from("{");
        write_key(&mut written, "name");
        write_string(&mut written, "a\"b\\c\nd\u{1}");
        written.push_str(",\"n\":42}");
        let v = Value::parse(&written).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1} extra",
            "\"unterminated",
            "nul",
            "{\"a\":01x}",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn u64_conversion_guards_sign() {
        assert_eq!(Value::Num(5.0).as_u64(), Some(5));
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Str("5".into()).as_u64(), None);
    }
}
