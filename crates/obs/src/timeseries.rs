//! Time-series snapshots: a background sampler copies the metrics
//! registry on a fixed interval into a bounded ring buffer, so a long
//! ingest reports docs/s, in-flight bytes, and queue depth *over time*
//! instead of one end-of-run dump.
//!
//! The sampler also watches a set of **progress counters** (by default
//! the engine's document counter): if none of them moves for
//! [`SamplerConfig::stall_after`] consecutive intervals while sampling
//! is live, a stall is recorded (and warned once per episode on stderr)
//! — the "worker pool stopped making progress" detector the ROADMAP's
//! scaling work needs.
//!
//! Everything here is pull-based and bounded: the ring holds at most
//! `capacity` points (oldest dropped first, with an exact drop count),
//! and the sampler thread wakes only on its interval or on stop.
//!
//! ## Indefinite runs (`dtdinfer serve`)
//!
//! The sampler was built for finite CLI commands, but the bound makes it
//! safe under a daemon that runs for weeks: memory is O(`capacity`)
//! forever, the ring always holds the *newest* window of history, and
//! `dropped` counts every evicted point exactly (kept + dropped =
//! samples taken), so a consumer can tell how much history scrolled
//! away. On graceful shutdown the serve CLI path calls [`Sampler::stop`],
//! which joins the thread and takes one final sample; on `kill -9` the
//! thread dies with the process and nothing is leaked — the series is
//! observability, not state, and is rebuilt on restart. Covered by the
//! `ring_cap` integration tests.

use crate::json::write_key;
use crate::metrics::MetricsSnapshot;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default ring capacity: at the default 100 ms interval this is about
/// two minutes of history.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One sampled point: when it was taken (relative to sampler start) and
/// the full registry snapshot at that moment.
#[derive(Debug, Clone)]
pub struct TsPoint {
    /// Offset from sampler start, in nanoseconds (monotonic clock).
    pub at_ns: u64,
    /// The registry at that moment.
    pub snapshot: MetricsSnapshot,
}

/// The bounded sample ring plus stall accounting.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Sampling interval in milliseconds (echoed for consumers).
    pub interval_ms: u64,
    /// Retained points, oldest first. At most the configured capacity.
    pub points: Vec<TsPoint>,
    /// Points dropped from the front once the ring filled.
    pub dropped: u64,
    /// Stall episodes detected (progress counters flat for the
    /// configured number of consecutive intervals).
    pub stalls: u64,
}

impl TimeSeries {
    /// Per-interval rate of a counter between consecutive points, as
    /// `(at_ns, delta_per_second)` pairs — e.g. docs/s over time from
    /// `engine.documents`. Counters are monotone, so a negative delta
    /// (after a registry reset) clamps to 0.
    pub fn rates(&self, counter: &str) -> Vec<(u64, f64)> {
        self.points
            .windows(2)
            .map(|w| {
                let (a, b) = (&w[0], &w[1]);
                let va = a.snapshot.counters.get(counter).copied().unwrap_or(0);
                let vb = b.snapshot.counters.get(counter).copied().unwrap_or(0);
                let dt_s = b.at_ns.saturating_sub(a.at_ns) as f64 / 1e9;
                let rate = if dt_s > 0.0 {
                    vb.saturating_sub(va) as f64 / dt_s
                } else {
                    0.0
                };
                (b.at_ns, rate)
            })
            .collect()
    }

    /// Stable JSON form: header fields, then one object per point with
    /// millisecond offsets and the point's counters and gauges.
    /// Histograms are omitted per point (their summaries are already
    /// cumulative; the final `--metrics` snapshot carries them).
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"interval_ms\":{},\"dropped\":{},\"stalls\":{},",
            self.interval_ms, self.dropped, self.stalls
        ));
        write_key(&mut out, "points");
        out.push('[');
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n{{\"at_ms\":{},", p.at_ns / 1_000_000));
            write_key(&mut out, "counters");
            out.push('{');
            for (j, (name, value)) in p.snapshot.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_key(&mut out, name);
                out.push_str(&value.to_string());
            }
            out.push_str("},");
            write_key(&mut out, "gauges");
            out.push('{');
            for (j, (name, value)) in p.snapshot.gauges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_key(&mut out, name);
                out.push_str(&value.to_string());
            }
            out.push_str("}}");
        }
        out.push_str("\n]}");
        out
    }
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Time between snapshots.
    pub interval: Duration,
    /// Ring capacity (oldest points dropped beyond it; 0 becomes 1).
    pub capacity: usize,
    /// Counters watched for progress. A stall is declared only when
    /// *every* watched counter is flat — one busy counter means the
    /// pipeline is alive.
    pub watch: Vec<String>,
    /// Consecutive flat intervals before a stall is declared.
    pub stall_after: u32,
    /// Whether a declared stall also warns on stderr (once per episode).
    pub warn_on_stall: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            interval: Duration::from_millis(100),
            capacity: DEFAULT_CAPACITY,
            watch: vec![
                "engine.documents".to_owned(),
                "xml.documents".to_owned(),
                "fuzz.cases".to_owned(),
            ],
            stall_after: 20,
            warn_on_stall: true,
        }
    }
}

/// Shared state between the sampler thread and its handle.
struct Shared {
    inner: Mutex<SharedInner>,
    wake: Condvar,
}

struct SharedInner {
    ring: VecDeque<TsPoint>,
    dropped: u64,
    stalls: u64,
    stop: bool,
}

/// Handle to a running sampler. Dropping it without [`Sampler::stop`]
/// detaches the thread (it exits on its next tick once the handle's
/// shared state says stop — drop sets it too).
pub struct Sampler {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
    interval: Duration,
    capacity: usize,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("interval", &self.interval)
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Starts a background sampler over the global registry. The caller is
/// expected to have enabled metrics recording; the sampler itself only
/// reads.
pub fn start(config: SamplerConfig) -> Sampler {
    let capacity = config.capacity.max(1);
    let shared = Arc::new(Shared {
        inner: Mutex::new(SharedInner {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            stalls: 0,
            stop: false,
        }),
        wake: Condvar::new(),
    });
    let thread_shared = Arc::clone(&shared);
    let interval = config.interval.max(Duration::from_millis(1));
    let thread = std::thread::Builder::new()
        .name("obs-timeseries".to_owned())
        .spawn(move || sampler_loop(&thread_shared, &config, capacity))
        .expect("spawn timeseries sampler");
    Sampler {
        shared,
        thread: Some(thread),
        interval,
        capacity,
    }
}

fn sampler_loop(shared: &Shared, config: &SamplerConfig, capacity: usize) {
    let epoch = Instant::now();
    let interval = config.interval.max(Duration::from_millis(1));
    let mut last_watch: Option<Vec<u64>> = None;
    let mut flat_intervals = 0u32;
    let mut warned_this_episode = false;
    loop {
        // Take one sample.
        let snapshot = crate::metrics::registry().snapshot();
        let at_ns = u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let watch_now: Vec<u64> = config
            .watch
            .iter()
            .map(|name| snapshot.counters.get(name).copied().unwrap_or(0))
            .collect();
        // An empty watch list means "no progress expectation": never
        // stall. (A serve daemon legitimately idles between requests.)
        let moved = config.watch.is_empty()
            || match &last_watch {
                Some(prev) => prev != &watch_now,
                // The first sample has nothing to compare against.
                None => true,
            };
        let mut stalled_now = false;
        if moved {
            flat_intervals = 0;
            warned_this_episode = false;
        } else {
            flat_intervals += 1;
            if flat_intervals == config.stall_after {
                stalled_now = true;
            }
        }
        last_watch = Some(watch_now);
        {
            let mut inner = shared.inner.lock().expect("timeseries ring poisoned");
            if inner.ring.len() == capacity {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            inner.ring.push_back(TsPoint { at_ns, snapshot });
            if stalled_now {
                inner.stalls += 1;
            }
        }
        if stalled_now && config.warn_on_stall && !warned_this_episode {
            warned_this_episode = true;
            eprintln!(
                "dtdinfer-obs: no progress on watched counters for {} interval(s) (~{} ms) — \
                 worker pool may be stalled",
                config.stall_after,
                u128::from(config.stall_after) * interval.as_millis()
            );
        }
        // Sleep until the next tick or a stop request.
        let inner = shared.inner.lock().expect("timeseries ring poisoned");
        if inner.stop {
            return;
        }
        let (inner, _) = shared
            .wake
            .wait_timeout(inner, interval)
            .expect("timeseries ring poisoned");
        if inner.stop {
            return;
        }
    }
}

impl Sampler {
    /// Stops the sampler, takes one final snapshot so the series always
    /// covers the end of the run, and returns the collected series.
    pub fn stop(mut self) -> TimeSeries {
        self.signal_stop();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("timeseries sampler panicked");
        }
        let mut inner = self.shared.inner.lock().expect("timeseries ring poisoned");
        // Final point: the state at stop time, so short runs (shorter
        // than one interval) still produce a non-empty series.
        let last_at = inner.ring.back().map_or(0, |p| p.at_ns);
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(TsPoint {
            at_ns: last_at.saturating_add(1),
            snapshot: crate::metrics::registry().snapshot(),
        });
        TimeSeries {
            interval_ms: u64::try_from(self.interval.as_millis()).unwrap_or(u64::MAX),
            points: inner.ring.drain(..).collect(),
            dropped: inner.dropped,
            stalls: inner.stalls,
        }
    }

    /// A point-in-time copy of the collected series *without* stopping
    /// the sampler — the serve daemon's `GET /debug/timeseries` payload.
    /// The ring keeps filling; `kept + dropped` still accounts for every
    /// sample taken up to the peek.
    pub fn peek(&self) -> TimeSeries {
        let inner = self.shared.inner.lock().expect("timeseries ring poisoned");
        TimeSeries {
            interval_ms: u64::try_from(self.interval.as_millis()).unwrap_or(u64::MAX),
            points: inner.ring.iter().cloned().collect(),
            dropped: inner.dropped,
            stalls: inner.stalls,
        }
    }

    fn signal_stop(&self) {
        let mut inner = self.shared.inner.lock().expect("timeseries ring poisoned");
        inner.stop = true;
        drop(inner);
        self.shared.wake.notify_all();
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.signal_stop();
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(at_ns: u64, docs: u64) -> TsPoint {
        let mut snapshot = MetricsSnapshot::default();
        snapshot
            .counters
            .insert("engine.documents".to_owned(), docs);
        snapshot
            .gauges
            .insert("engine.queue.remaining".to_owned(), 100 - docs.min(100));
        TsPoint { at_ns, snapshot }
    }

    #[test]
    fn rates_are_deltas_over_time() {
        let ts = TimeSeries {
            interval_ms: 100,
            points: vec![
                point(0, 0),
                point(1_000_000_000, 50),
                point(2_000_000_000, 150),
            ],
            dropped: 0,
            stalls: 0,
        };
        let rates = ts.rates("engine.documents");
        assert_eq!(rates.len(), 2);
        assert!((rates[0].1 - 50.0).abs() < 1e-6, "{rates:?}");
        assert!((rates[1].1 - 100.0).abs() < 1e-6, "{rates:?}");
        // Unknown counters rate at zero rather than panic.
        assert!(ts.rates("absent").iter().all(|(_, r)| *r == 0.0));
    }

    #[test]
    fn json_is_parseable_and_carries_points() {
        let ts = TimeSeries {
            interval_ms: 100,
            points: vec![point(0, 0), point(100_000_000, 10)],
            dropped: 3,
            stalls: 1,
        };
        let text = ts.json();
        let v = crate::json::Value::parse(&text).expect(&text);
        assert_eq!(v.get("interval_ms").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("dropped").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("stalls").unwrap().as_u64(), Some(1));
        let points = v.get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[1]
                .get("counters")
                .unwrap()
                .get("engine.documents")
                .unwrap()
                .as_u64(),
            Some(10)
        );
        assert_eq!(points[1].get("at_ms").unwrap().as_u64(), Some(100));
    }

    // Live-sampler tests share the global registry, so both scenarios run
    // inside one test body to avoid cross-test interference.
    #[test]
    fn sampler_collects_bounded_points_and_detects_stalls() {
        let _g = crate::global_test_lock();
        crate::enable(true, false);
        crate::reset();
        // A deliberately tiny ring so the bound is exercised quickly.
        let sampler = start(SamplerConfig {
            interval: Duration::from_millis(2),
            capacity: 4,
            watch: vec!["progress".to_owned()],
            stall_after: 3,
            warn_on_stall: false,
        });
        for _ in 0..5 {
            crate::count("progress", 1);
            std::thread::sleep(Duration::from_millis(4));
        }
        // Now stop making progress long enough to trip the detector.
        std::thread::sleep(Duration::from_millis(40));
        // A live peek does not disturb the sampler.
        let live = sampler.peek();
        assert!(!live.points.is_empty(), "peek returns current history");
        crate::json::Value::parse(&live.json()).expect("peeked series serializes");
        let ts = sampler.stop();
        crate::disable();
        assert!(!ts.points.is_empty());
        assert!(
            ts.points.len() <= 4,
            "ring bound: {} points",
            ts.points.len()
        );
        assert!(ts.dropped > 0, "enough ticks to overflow the ring");
        assert!(ts.stalls >= 1, "flat progress must be detected: {ts:?}");
        // Offsets are strictly increasing and counters monotone.
        for w in ts.points.windows(2) {
            assert!(w[0].at_ns < w[1].at_ns);
            let a = w[0].snapshot.counters.get("progress").copied().unwrap_or(0);
            let b = w[1].snapshot.counters.get("progress").copied().unwrap_or(0);
            assert!(a <= b, "counter went backwards: {a} -> {b}");
        }
        let text = ts.json();
        crate::json::Value::parse(&text).expect(&text);
    }

    #[test]
    fn stopping_immediately_still_yields_a_final_point() {
        let sampler = start(SamplerConfig {
            interval: Duration::from_secs(3600),
            capacity: 8,
            watch: Vec::new(),
            stall_after: 2,
            warn_on_stall: false,
        });
        let ts = sampler.stop();
        assert!(
            !ts.points.is_empty(),
            "stop() appends a final snapshot even before the first tick"
        );
        assert_eq!(ts.stalls, 0, "an empty watch list never stalls");
    }
}
