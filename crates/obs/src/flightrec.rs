//! Flight recorder: a bounded ring of the most recent notable events —
//! access-log lines, span closures, lifecycle marks — kept so that a
//! crash leaves evidence behind. The `serve` daemon enables it at boot,
//! installs the panic hook, and dumps the ring to
//! `<journal-dir>/flight-<pid>.json` on panic and on graceful shutdown.
//!
//! The recorder is gated on its own flag, independent of the
//! metrics/trace state: operators may scrape `/metrics` with tracing off
//! while still wanting a post-mortem ring. The disabled-path cost is one
//! relaxed atomic load; when enabled, event text is copied outside the
//! lock and the mutex is held only for the push/evict pair ("lock-light":
//! no allocation, formatting, or I/O under the lock).

use crate::json::{write_key, write_string};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default ring capacity when [`enable`] is given 0.
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub at_unix_ms: u64,
    /// Event class: `"access"`, `"span"`, `"event"`, `"lifecycle"`,
    /// `"panic"`, … — a small fixed vocabulary per producer.
    pub kind: &'static str,
    /// Human-oriented single-line payload (an access-log JSON line, a
    /// `name dur_ns=…` span closure, a panic message).
    pub line: String,
}

/// A point-in-time copy of the ring plus its accounting.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// Recording process id (distinguishes dumps from restarted daemons).
    pub pid: u32,
    /// Ring capacity at snapshot time.
    pub capacity: usize,
    /// Events evicted because the ring was full — exact, so a reader can
    /// tell "quiet process" from "busy process, old evidence gone".
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightSnapshot {
    /// Stable JSON rendering, the on-disk dump format:
    /// `{"pid":…,"capacity":…,"dropped":…,"events":[{"at_unix_ms":…,
    /// "kind":"…","line":"…"},…]}`.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        write_key(&mut out, "pid");
        out.push_str(&self.pid.to_string());
        out.push(',');
        write_key(&mut out, "capacity");
        out.push_str(&self.capacity.to_string());
        out.push(',');
        write_key(&mut out, "dropped");
        out.push_str(&self.dropped.to_string());
        out.push(',');
        write_key(&mut out, "events");
        out.push('[');
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            write_key(&mut out, "at_unix_ms");
            out.push_str(&e.at_unix_ms.to_string());
            out.push(',');
            write_key(&mut out, "kind");
            write_string(&mut out, e.kind);
            out.push(',');
            write_key(&mut out, "line");
            write_string(&mut out, e.line.as_str());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    dropped: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

/// Turns the recorder on with the given ring capacity (0 selects
/// [`DEFAULT_CAPACITY`]). Shrinking the capacity evicts oldest events.
pub fn enable(capacity: usize) {
    let capacity = if capacity == 0 {
        DEFAULT_CAPACITY
    } else {
        capacity
    };
    {
        let mut ring = ring().lock().expect("flight ring poisoned");
        ring.capacity = capacity;
        while ring.events.len() > capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off (the default). The ring keeps its contents so a
/// late dump still has evidence; [`reset`] clears it.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is on — the one-atomic-load fast-path gate.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the ring and its drop accounting (enable state is unchanged).
pub fn reset() {
    let mut ring = ring().lock().expect("flight ring poisoned");
    ring.events.clear();
    ring.dropped = 0;
}

/// Wall-clock now in milliseconds since the Unix epoch (0 if the clock
/// is before the epoch). Shared with the serve access log so flight
/// events and access lines use the same timebase.
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Appends unconditionally — the panic hook uses this so the panic line
/// lands in the dump even if the recorder was never enabled.
fn record_forced(kind: &'static str, line: &str) {
    // Build the event (timestamp + copy) before taking the lock.
    let event = FlightEvent {
        at_unix_ms: now_unix_ms(),
        kind,
        line: line.to_owned(),
    };
    let mut ring = ring().lock().expect("flight ring poisoned");
    if ring.events.len() >= ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(event);
}

/// Records one event. No-op (a single atomic load) unless enabled; the
/// line is copied only after the gate passes.
#[inline]
pub fn record(kind: &'static str, line: &str) {
    if enabled() {
        record_forced(kind, line);
    }
}

/// Records a span closure (`name dur_ns=…`). Called from
/// [`crate::trace::SpanGuard`]'s drop; self-gated like [`record`].
#[inline]
pub fn record_span(name: &'static str, dur_ns: u64) {
    if enabled() {
        record_forced("span", &format!("{name} dur_ns={dur_ns}"));
    }
}

/// Records a key/value trace event (`name k=v k2=v2`). Called from
/// [`crate::event`]; self-gated like [`record`].
#[inline]
pub fn record_event(name: &'static str, fields: &[(&str, String)]) {
    if enabled() {
        let mut line = String::from(name);
        for (k, v) in fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(v);
        }
        record_forced("event", &line);
    }
}

/// Copies the ring out, oldest first.
pub fn snapshot() -> FlightSnapshot {
    let ring = ring().lock().expect("flight ring poisoned");
    FlightSnapshot {
        pid: std::process::id(),
        capacity: ring.capacity,
        dropped: ring.dropped,
        events: ring.events.iter().cloned().collect(),
    }
}

/// Writes the current ring to `<dir>/flight-<pid>.json` (atomically via a
/// temp file + rename, matching the journal discipline) and returns the
/// final path.
pub fn dump_to_dir(dir: &Path) -> Result<PathBuf, String> {
    let pid = std::process::id();
    let path = dir.join(format!("flight-{pid}.json"));
    let tmp = dir.join(format!("flight-{pid}.json.tmp"));
    let mut body = snapshot().json();
    body.push('\n');
    std::fs::write(&tmp, body).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
    Ok(path)
}

/// Installs a process-wide panic hook (once; later calls with a different
/// directory are ignored) that records the panic message + location into
/// the ring — bypassing the enable gate, so the evidence always lands —
/// dumps the ring to `dir`, then chains to the previous hook so the
/// default backtrace still prints.
pub fn install_panic_hook(dir: PathBuf) {
    static HOOK: Once = Once::new();
    HOOK.call_once(move || {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_owned());
            let location = info
                .location()
                .map(|l| format!(" at {}:{}", l.file(), l.line()))
                .unwrap_or_default();
            record_forced("panic", &format!("{message}{location}"));
            let _ = dump_to_dir(&dir);
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    // The ring is process-global, so every test serializes on the obs
    // test lock and restores the disabled state on exit.

    #[test]
    fn ring_bounds_and_exact_drop_accounting() {
        let _g = crate::global_test_lock();
        enable(4);
        reset();
        for i in 0..10 {
            record("event", &format!("e{i}"));
        }
        let snap = snapshot();
        assert_eq!(snap.capacity, 4);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6, "every eviction must be counted");
        let lines: Vec<&str> = snap.events.iter().map(|e| e.line.as_str()).collect();
        assert_eq!(lines, ["e6", "e7", "e8", "e9"], "oldest evicted first");
        disable();
    }

    #[test]
    fn disabled_recorder_drops_events_silently() {
        let _g = crate::global_test_lock();
        enable(8);
        reset();
        disable();
        record("event", "should not appear");
        record_span("s", 1);
        record_event("e", &[("k", "v".to_owned())]);
        assert!(snapshot().events.is_empty());
    }

    #[test]
    fn snapshot_json_round_trips_through_the_parser() {
        let _g = crate::global_test_lock();
        enable(8);
        reset();
        record("access", "{\"id\":1,\"route\":\"/dtd\"}");
        record_span("ingest", 1234);
        record_event("drift", &[("kind", "widened".to_owned())]);
        let json = snapshot().json();
        disable();
        let value = Value::parse(&json).expect("dump must parse");
        let events = value
            .get("events")
            .and_then(Value::as_arr)
            .expect("events array");
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get("kind").and_then(Value::as_str),
            Some("access")
        );
        assert_eq!(
            events[1].get("line").and_then(Value::as_str),
            Some("ingest dur_ns=1234")
        );
        assert_eq!(
            events[2].get("line").and_then(Value::as_str),
            Some("drift kind=widened")
        );
        assert!(events[0]
            .get("at_unix_ms")
            .and_then(Value::as_u64)
            .is_some());
    }

    #[test]
    fn panic_hook_records_and_dumps() {
        let _g = crate::global_test_lock();
        let dir = std::env::temp_dir().join(format!("dtdinfer-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        enable(16);
        reset();
        install_panic_hook(dir.clone());
        let result = std::panic::catch_unwind(|| panic!("controlled drill"));
        assert!(result.is_err());
        let snap = snapshot();
        disable();
        let panic_lines: Vec<&FlightEvent> =
            snap.events.iter().filter(|e| e.kind == "panic").collect();
        assert_eq!(panic_lines.len(), 1, "{snap:?}");
        assert!(panic_lines[0].line.contains("controlled drill"));
        assert!(
            panic_lines[0].line.contains("flightrec.rs"),
            "location recorded"
        );
        let dump = dir.join(format!("flight-{}.json", std::process::id()));
        let body = std::fs::read_to_string(&dump).expect("hook must write the dump");
        assert!(Value::parse(body.trim()).is_ok(), "dump must be valid JSON");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
