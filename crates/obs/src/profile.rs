//! Span post-processing: turns the flat trace (spans are recorded at
//! *close* time, so children precede parents and threads interleave)
//! into per-thread span trees, and derives the three views the
//! `dtdinfer profile` subcommand prints:
//!
//! * **phase stats** — per span-name totals with *self time* (duration
//!   minus time spent in child spans), so a wrapper phase like
//!   `engine.shard` doesn't double-count the `engine.derive` work
//!   nested inside it;
//! * **the critical path** — from the longest root span, repeatedly
//!   descend into the longest child: the chain of phases that bounds
//!   wall-clock time and is worth optimizing first;
//! * **folded stacks** — `tid0;engine.shard;engine.derive 1234` lines
//!   (value = self time in nanoseconds), the input format of standard
//!   flamegraph tooling (`flamegraph.pl`, inferno, speedscope).
//!
//! Nesting is reconstructed by interval containment per thread: a span
//! is a child of the innermost earlier span on the same thread whose
//! `[start, end]` interval contains it. Spans that merely overlap
//! (possible across threads, not within one) become siblings.

use crate::trace::TraceEntry;
use std::collections::BTreeMap;

/// One reconstructed span with its nested children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (the call-site label).
    pub name: &'static str,
    /// Start offset in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Thread that ran the span.
    pub tid: u64,
    /// Spans nested inside this one, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// Time spent in this span but not in any child span. Saturates at
    /// zero (clock skew can make children sum past the parent by a few
    /// nanoseconds).
    pub fn self_ns(&self) -> u64 {
        let in_children: u64 = self.children.iter().map(|c| c.dur_ns).sum();
        self.dur_ns.saturating_sub(in_children)
    }
}

/// Builds per-thread span trees from a raw trace. Returns the roots
/// (spans contained in no other span), ordered by thread id then start
/// time. Events in the input are ignored.
pub fn build_forest(entries: &[TraceEntry]) -> Vec<SpanNode> {
    let mut per_tid: BTreeMap<u64, Vec<(usize, SpanNode)>> = BTreeMap::new();
    for (index, entry) in entries.iter().enumerate() {
        if let TraceEntry::Span {
            name,
            start_ns,
            dur_ns,
            tid,
        } = entry
        {
            per_tid.entry(*tid).or_default().push((
                index,
                SpanNode {
                    name,
                    start_ns: *start_ns,
                    dur_ns: *dur_ns,
                    tid: *tid,
                    children: Vec::new(),
                },
            ));
        }
    }
    let mut roots = Vec::new();
    for (_tid, mut spans) in per_tid {
        // Start ascending; on ties the longer (containing) span first.
        // Identical intervals are ambiguous from timing alone, but spans
        // are recorded at close time (child before parent), so the later
        // entry is the parent and must sort first.
        spans.sort_by(|(ia, a), (ib, b)| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.end_ns().cmp(&a.end_ns()))
                .then(ib.cmp(ia))
        });
        let mut stack: Vec<SpanNode> = Vec::new();
        for (_index, span) in spans {
            while let Some(top) = stack.last() {
                let contains = span.start_ns >= top.start_ns && span.end_ns() <= top.end_ns();
                if contains {
                    break;
                }
                let finished = stack.pop().expect("non-empty");
                attach(finished, &mut stack, &mut roots);
            }
            stack.push(span);
        }
        while let Some(finished) = stack.pop() {
            attach(finished, &mut stack, &mut roots);
        }
    }
    roots.sort_by_key(|r| (r.tid, r.start_ns));
    roots
}

fn attach(finished: SpanNode, stack: &mut [SpanNode], roots: &mut Vec<SpanNode>) {
    match stack.last_mut() {
        Some(parent) => parent.children.push(finished),
        None => roots.push(finished),
    }
}

/// Aggregate timings for one span name across the whole forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of their durations (includes time in children).
    pub total_ns: u64,
    /// Sum of their self times (excludes time in children).
    pub self_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// Per-name aggregates over every span in the forest, hottest self-time
/// first (ties broken by name for determinism).
pub fn phase_stats(forest: &[SpanNode]) -> Vec<PhaseStat> {
    let mut by_name: BTreeMap<&'static str, PhaseStat> = BTreeMap::new();
    fn walk(node: &SpanNode, by_name: &mut BTreeMap<&'static str, PhaseStat>) {
        let stat = by_name.entry(node.name).or_insert(PhaseStat {
            name: node.name,
            count: 0,
            total_ns: 0,
            self_ns: 0,
            max_ns: 0,
        });
        stat.count += 1;
        stat.total_ns += node.dur_ns;
        stat.self_ns += node.self_ns();
        stat.max_ns = stat.max_ns.max(node.dur_ns);
        for child in &node.children {
            walk(child, by_name);
        }
    }
    for root in forest {
        walk(root, &mut by_name);
    }
    let mut stats: Vec<PhaseStat> = by_name.into_values().collect();
    stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    stats
}

/// One step on the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalStep {
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Span name.
    pub name: &'static str,
    /// Thread that ran it.
    pub tid: u64,
    /// Span duration.
    pub dur_ns: u64,
    /// Self time at this step.
    pub self_ns: u64,
}

/// The chain of spans bounding wall-clock time: start at the longest
/// root in the forest, then repeatedly descend into the longest child.
/// Empty when the forest is empty.
pub fn critical_path(forest: &[SpanNode]) -> Vec<CriticalStep> {
    let mut path = Vec::new();
    let Some(mut node) = forest.iter().max_by_key(|r| r.dur_ns) else {
        return path;
    };
    loop {
        path.push(CriticalStep {
            depth: path.len(),
            name: node.name,
            tid: node.tid,
            dur_ns: node.dur_ns,
            self_ns: node.self_ns(),
        });
        match node.children.iter().max_by_key(|c| c.dur_ns) {
            Some(child) => node = child,
            None => return path,
        }
    }
}

/// Renders the forest in folded-stack format: one line per unique stack,
/// `tid<N>;outer;inner <self-time-ns>`, identical stacks merged and the
/// output sorted, so a fixed trace folds byte-identically. Frame
/// separators (`;`) and spaces inside names are replaced with `_` to
/// keep the format unambiguous.
pub fn folded_stacks(forest: &[SpanNode]) -> String {
    fn frame(name: &str) -> String {
        name.chars()
            .map(|c| {
                if c == ';' || c.is_whitespace() {
                    '_'
                } else {
                    c
                }
            })
            .collect()
    }
    fn walk(node: &SpanNode, prefix: &str, lines: &mut BTreeMap<String, u64>) {
        let stack = format!("{prefix};{}", frame(node.name));
        let self_ns = node.self_ns();
        if self_ns > 0 {
            *lines.entry(stack.clone()).or_insert(0) += self_ns;
        }
        for child in &node.children {
            walk(child, &stack, lines);
        }
    }
    let mut lines = BTreeMap::new();
    for root in forest {
        walk(root, &format!("tid{}", root.tid), &mut lines);
    }
    let mut out = String::new();
    for (stack, value) in lines {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

/// JSON rendering of the two aggregate views — what the serve daemon's
/// on-demand `GET /debug/profile` answers with:
/// `{"critical_path":[{"depth":…,"name":"…","tid":…,"dur_ns":…,
/// "self_ns":…},…],"phases":[{"name":"…","count":…,"total_ns":…,
/// "self_ns":…,"max_ns":…},…]}`.
pub fn profile_json(forest: &[SpanNode]) -> String {
    use crate::json::{write_key, write_string};
    let mut out = String::from("{");
    write_key(&mut out, "critical_path");
    out.push('[');
    for (i, step) in critical_path(forest).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        write_key(&mut out, "depth");
        out.push_str(&step.depth.to_string());
        out.push(',');
        write_key(&mut out, "name");
        write_string(&mut out, step.name);
        out.push_str(&format!(
            ",\"tid\":{},\"dur_ns\":{},\"self_ns\":{}}}",
            step.tid, step.dur_ns, step.self_ns
        ));
    }
    out.push_str("],");
    write_key(&mut out, "phases");
    out.push('[');
    for (i, stat) in phase_stats(forest).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        write_key(&mut out, "name");
        write_string(&mut out, stat.name);
        out.push_str(&format!(
            ",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"max_ns\":{}}}",
            stat.count, stat.total_ns, stat.self_ns, stat.max_ns
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start_ns: u64, dur_ns: u64, tid: u64) -> TraceEntry {
        TraceEntry::Span {
            name,
            start_ns,
            dur_ns,
            tid,
        }
    }

    /// Spans as the recorder emits them: close order (children first).
    fn sample_trace() -> Vec<TraceEntry> {
        vec![
            span("parse", 10, 30, 0),
            span("derive", 50, 40, 0),
            span("shard", 0, 100, 0),
            span("derive", 5, 80, 1),
            span("shard", 0, 90, 1),
            TraceEntry::Event {
                name: "noise",
                at_ns: 1,
                tid: 0,
                fields: vec![],
            },
        ]
    }

    #[test]
    fn forest_reconstructs_nesting_per_thread() {
        let forest = build_forest(&sample_trace());
        assert_eq!(forest.len(), 2, "one root per thread: {forest:?}");
        let t0 = &forest[0];
        assert_eq!((t0.name, t0.tid), ("shard", 0));
        assert_eq!(t0.children.len(), 2);
        assert_eq!(t0.children[0].name, "parse");
        assert_eq!(t0.children[1].name, "derive");
        assert_eq!(t0.self_ns(), 100 - 30 - 40);
        let t1 = &forest[1];
        assert_eq!((t1.name, t1.tid), ("shard", 1));
        assert_eq!(t1.children.len(), 1);
        assert_eq!(t1.self_ns(), 10);
    }

    #[test]
    fn deep_nesting_and_siblings_resolve() {
        // a contains b contains c; d is b's sibling inside a.
        let forest = build_forest(&[
            span("c", 20, 10, 0),
            span("b", 10, 30, 0),
            span("d", 50, 20, 0),
            span("a", 0, 100, 0),
        ]);
        assert_eq!(forest.len(), 1);
        let a = &forest[0];
        assert_eq!(a.children.len(), 2);
        assert_eq!(a.children[0].name, "b");
        assert_eq!(a.children[0].children[0].name, "c");
        assert_eq!(a.children[1].name, "d");
        assert_eq!(a.self_ns(), 100 - 30 - 20);
    }

    #[test]
    fn phase_stats_aggregate_self_time() {
        let stats = phase_stats(&build_forest(&sample_trace()));
        let derive = stats.iter().find(|s| s.name == "derive").unwrap();
        assert_eq!(derive.count, 2);
        assert_eq!(derive.total_ns, 40 + 80);
        assert_eq!(derive.self_ns, 40 + 80, "leaves are all self time");
        assert_eq!(derive.max_ns, 80);
        let shard = stats.iter().find(|s| s.name == "shard").unwrap();
        assert_eq!(shard.total_ns, 190);
        assert_eq!(shard.self_ns, 30 + 10, "children subtracted");
        assert_eq!(stats[0].name, "derive", "hottest self time first");
    }

    #[test]
    fn critical_path_follows_longest_children() {
        let steps = critical_path(&build_forest(&sample_trace()));
        // Longest root is tid0's shard (100 ns); its longest child is
        // derive (40 ns), a leaf.
        let named: Vec<(usize, &str)> = steps.iter().map(|s| (s.depth, s.name)).collect();
        assert_eq!(named, vec![(0, "shard"), (1, "derive")]);
        assert_eq!(steps[0].dur_ns, 100);
        assert_eq!(steps[0].self_ns, 30);
        assert!(critical_path(&[]).is_empty());
    }

    #[test]
    fn folded_stacks_merge_and_sanitize() {
        let folded = folded_stacks(&build_forest(&sample_trace()));
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"tid0;shard 30"), "{folded}");
        assert!(lines.contains(&"tid0;shard;derive 40"), "{folded}");
        assert!(lines.contains(&"tid1;shard;derive 80"), "{folded}");
        // Identical stacks merge: two derives on tid0 would sum.
        let folded2 = folded_stacks(&build_forest(&[
            span("derive", 10, 5, 0),
            span("derive", 20, 7, 0),
            span("shard", 0, 100, 0),
        ]));
        assert!(
            folded2.lines().any(|l| l == "tid0;shard;derive 12"),
            "{folded2}"
        );
        // Hostile names can't break the format.
        let folded3 = folded_stacks(&build_forest(&[span("a;b c", 0, 5, 0)]));
        assert_eq!(folded3, "tid0;a_b_c 5\n");
    }

    #[test]
    fn profile_json_parses_and_carries_both_views() {
        let text = profile_json(&build_forest(&sample_trace()));
        let v = crate::json::Value::parse(&text).expect(&text);
        let path = v.get("critical_path").unwrap().as_arr().unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].get("name").unwrap().as_str(), Some("shard"));
        assert_eq!(path[0].get("dur_ns").unwrap().as_u64(), Some(100));
        let phases = v.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("name").unwrap().as_str(), Some("derive"));
        assert_eq!(phases[0].get("count").unwrap().as_u64(), Some(2));
        // Empty forest → empty arrays, still valid JSON.
        let empty = profile_json(&[]);
        assert_eq!(empty, "{\"critical_path\":[],\"phases\":[]}");
    }

    #[test]
    fn zero_self_time_spans_emit_no_line() {
        // Parent fully covered by its child: no self time, no line.
        let folded = folded_stacks(&build_forest(&[
            span("inner", 0, 50, 0),
            span("outer", 0, 50, 0),
        ]));
        assert_eq!(folded, "tid0;outer;inner 50\n");
    }
}
