//! Regression coverage for the timeseries sampler under *long* runs —
//! the `dtdinfer serve` case, where sampling is live indefinitely rather
//! than for the length of one CLI command.
//!
//! The contract: the ring NEVER holds more than `capacity` points no
//! matter how long the run, and every point pushed out of the ring is
//! counted in `dropped` exactly (conservation: points kept + points
//! dropped = samples taken). Runs as its own test binary so the global
//! registry is not shared with other obs tests.

use dtdinfer_obs::timeseries::{start, SamplerConfig};
use std::time::Duration;

#[test]
fn ring_stays_bounded_and_drops_are_accounted_under_long_runs() {
    dtdinfer_obs::enable(true, false);
    dtdinfer_obs::reset();
    let capacity = 8;
    let sampler = start(SamplerConfig {
        interval: Duration::from_millis(1),
        capacity,
        watch: vec!["ringcap.ticks".to_owned()],
        stall_after: 1_000_000, // stalls are not under test here
        warn_on_stall: false,
    });
    // A "long run" relative to the ring: hundreds of intervals against a
    // capacity of 8, with the watched counter moving the whole time.
    for _ in 0..40 {
        dtdinfer_obs::count("ringcap.ticks", 1);
        std::thread::sleep(Duration::from_millis(5));
    }
    let series = sampler.stop();
    assert_eq!(series.points.len(), capacity, "ring grew past its capacity");
    assert!(
        series.dropped > 0,
        "a 200 ms run at 1 ms intervals must overflow an 8-point ring"
    );
    // Conservation: the drop counter is exact, not a saturating flag.
    // We can't know the precise sample count (scheduling), but kept +
    // dropped must be plausible for the elapsed time and monotone
    // timestamps must survive the dropping.
    let total = series.points.len() as u64 + series.dropped;
    assert!(
        total >= 40,
        "only {total} samples over ~200 ms of 1 ms ticks"
    );
    let mut last = 0;
    for p in &series.points {
        assert!(p.at_ns > last, "timestamps went backwards after drops");
        last = p.at_ns;
    }
    // The retained window is the *newest* points: its counters must have
    // seen most of the ticks, not the first few.
    let newest = series
        .points
        .last()
        .and_then(|p| p.snapshot.counters.get("ringcap.ticks"))
        .copied()
        .unwrap_or(0);
    assert!(
        newest >= 35,
        "newest retained point saw only {newest} ticks"
    );
    // And the serialized form carries the accounting for dashboards.
    let json = series.json();
    assert!(
        json.contains(&format!("\"dropped\":{}", series.dropped)),
        "{json}"
    );
}

#[test]
fn zero_capacity_is_clamped_not_unbounded() {
    dtdinfer_obs::enable(true, false);
    let sampler = start(SamplerConfig {
        interval: Duration::from_millis(1),
        capacity: 0,
        watch: Vec::new(),
        stall_after: 1_000_000,
        warn_on_stall: false,
    });
    std::thread::sleep(Duration::from_millis(30));
    let series = sampler.stop();
    assert_eq!(series.points.len(), 1, "capacity 0 must clamp to 1");
    assert!(series.dropped > 0);
}
