//! Criterion micro-benchmarks for the inference algorithms (§8.3).
//!
//! Covers the paper's performance claims: crx and iDTD scale to thousands
//! of strings (seconds in 2006, milliseconds here); xtract is super-linear
//! and unusable beyond ~1000 strings; Trang is in crx's ballpark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtdinfer_automata::soa::Soa;
use dtdinfer_baselines::trang::trang;
use dtdinfer_baselines::xtract::{xtract, XtractConfig};
use dtdinfer_core::crx::crx;
use dtdinfer_core::idtd::idtd_from_words;
use dtdinfer_core::rewrite::rewrite_soa;
use dtdinfer_gen::generator::generate_sample;
use dtdinfer_gen::scenarios::{table1, table2};
use dtdinfer_regex::alphabet::Word;
use std::hint::black_box;

/// §8.3 headline: example4 (61 symbols) at growing sample sizes.
fn bench_example4_scaling(c: &mut Criterion) {
    let b = table2()[3].build();
    let mut group = c.benchmark_group("example4");
    for &n in &[100usize, 1000, 10000] {
        let sample = generate_sample(&b.data, n, 0x9e7f);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("crx", n), &sample, |bch, s| {
            bch.iter(|| black_box(crx(black_box(s))))
        });
        group.bench_with_input(BenchmarkId::new("idtd", n), &sample, |bch, s| {
            bch.iter(|| black_box(idtd_from_words(black_box(s))))
        });
        group.bench_with_input(BenchmarkId::new("trang", n), &sample, |bch, s| {
            bch.iter(|| black_box(trang(black_box(s))))
        });
    }
    group.finish();
}

/// Typical ~10-symbol element from a few hundred strings (Table 1 shapes).
fn bench_typical_element(c: &mut Criterion) {
    let b = table1()[0].build(); // ProteinEntry, 13 symbols
    let sample = generate_sample(&b.data, 300, 0x41);
    let mut group = c.benchmark_group("typical_element");
    group.bench_function("crx", |bch| bch.iter(|| black_box(crx(black_box(&sample)))));
    group.bench_function("idtd", |bch| {
        bch.iter(|| black_box(idtd_from_words(black_box(&sample))))
    });
    group.bench_function("trang", |bch| {
        bch.iter(|| black_box(trang(black_box(&sample))))
    });
    group.finish();
}

/// xtract on growing (small) samples — the super-linear baseline.
fn bench_xtract(c: &mut Criterion) {
    let b = table2()[0].build(); // example1, 3 symbols: keeps runtime sane
    let mut group = c.benchmark_group("xtract");
    group.sample_size(10);
    for &n in &[25usize, 50, 100] {
        let sample = generate_sample(&b.data, n, 0x77);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sample, |bch, s| {
            bch.iter(|| black_box(xtract(black_box(s), &XtractConfig::default())))
        });
    }
    group.finish();
}

/// The SOA→SORE rewriting itself, isolated from 2T-INF (Theorem 1's O(n⁴)
/// where n = number of element names).
fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite");
    for (name, idx) in [("ProteinEntry13", 0usize), ("genetics11", 6)] {
        let b = table1()[idx].build();
        let soa = dtdinfer_automata::glushkov::soa_of_sore(&b.data).expect("SORE");
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(rewrite_soa(black_box(&soa))))
        });
    }
    // Wide-disjunction SOA (45 symbols, 1896 edges — example3).
    let b = table2()[2].build();
    let soa = dtdinfer_automata::glushkov::soa_of_sore(&b.data).expect("SORE");
    group.sample_size(20);
    group.bench_function("example3_45sym", |bch| {
        bch.iter(|| black_box(rewrite_soa(black_box(&soa))))
    });
    group.finish();
}

/// 2T-INF throughput (linear pass over the corpus).
fn bench_2tinf(c: &mut Criterion) {
    let b = table2()[3].build();
    let sample: Vec<Word> = generate_sample(&b.data, 10000, 0x2f);
    let mut group = c.benchmark_group("2tinf");
    group.throughput(Throughput::Elements(10000));
    group.bench_function("example4_10000", |bch| {
        bch.iter(|| black_box(Soa::learn(black_box(&sample))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_example4_scaling,
    bench_typical_element,
    bench_xtract,
    bench_rewrite,
    bench_2tinf
);
criterion_main!(benches);
