//! Criterion micro-benchmarks for the substrates: XML parsing/extraction,
//! DFA-based language comparison, state elimination, and the sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtdinfer_automata::dfa::regex_equiv;
use dtdinfer_automata::soa::Soa;
use dtdinfer_automata::state_elim::eliminate;
use dtdinfer_gen::generator::generate_sample;
use dtdinfer_gen::scenarios::table2;
use dtdinfer_regex::alphabet::Alphabet;
use dtdinfer_regex::parser::parse;
use dtdinfer_xml::extract::Corpus;
use std::hint::black_box;

/// Builds a synthetic XML document with `n` book records.
fn synthetic_doc(n: usize) -> String {
    let mut doc = String::from("<catalog>");
    for i in 0..n {
        doc.push_str(&format!(
            "<book id=\"{i}\"><title>Title {i}</title>\
             <author>A{i}</author><author>B{i}</author>\
             <year>19{:02}</year></book>",
            i % 100
        ));
    }
    doc.push_str("</catalog>");
    doc
}

fn bench_xml_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml_extract");
    for &n in &[100usize, 1000] {
        let doc = synthetic_doc(n);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &doc, |bch, d| {
            bch.iter(|| {
                let mut corpus = Corpus::new();
                corpus.add_document(black_box(d)).expect("well-formed");
                black_box(corpus.total_sequences())
            })
        });
    }
    group.finish();
}

fn bench_dfa_equivalence(c: &mut Criterion) {
    let mut al = Alphabet::new();
    let r1 = parse("((b? (a|c))+ d)+ e", &mut al).unwrap();
    let r2 = parse("((b? (a|c)+)+ d)+ e", &mut al).unwrap();
    let mut group = c.benchmark_group("dfa");
    group.bench_function("equiv_small", |bch| {
        bch.iter(|| black_box(regex_equiv(black_box(&r1), black_box(&r2))))
    });
    // Wide-disjunction equivalence (18 symbols).
    let b = table2()[1].build();
    group.bench_function("equiv_example2", |bch| {
        bch.iter(|| {
            black_box(regex_equiv(
                black_box(&b.original),
                black_box(&b.expected_idtd),
            ))
        })
    });
    group.finish();
}

fn bench_state_elimination(c: &mut Criterion) {
    let mut al = Alphabet::new();
    let words: Vec<_> = ["bacacdacde", "cbacdbacde", "abccaadcde"]
        .iter()
        .map(|w| al.word_from_chars(w))
        .collect();
    let soa = Soa::learn(&words);
    c.bench_function("state_elim_fig1", |bch| {
        bch.iter(|| black_box(eliminate(black_box(&soa))))
    });
}

fn bench_sampler(c: &mut Criterion) {
    let b = table2()[3].build(); // 61 symbols
    let mut group = c.benchmark_group("sampler");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("example4_1000", |bch| {
        bch.iter(|| black_box(generate_sample(black_box(&b.data), 1000, 7)))
    });
    group.finish();
}

fn bench_minimization(c: &mut Criterion) {
    let b = table2()[1].build(); // example2, 18 symbols
    let alpha: Vec<_> = b.original.symbols();
    let d = dtdinfer_automata::dfa::Dfa::from_regex(&b.original, &alpha);
    c.bench_function("minimize_example2", |bch| {
        bch.iter(|| black_box(black_box(&d).minimize()))
    });
}

fn bench_census(c: &mut Criterion) {
    let b = table2()[1].build();
    let alpha: Vec<_> = b.original.symbols();
    let d = dtdinfer_automata::dfa::Dfa::from_regex(&b.original, &alpha);
    c.bench_function("census_example2_len20", |bch| {
        bch.iter(|| black_box(black_box(&d).census(20)))
    });
}

fn bench_contextual(c: &mut Criterion) {
    use dtdinfer_xml::contextual::{infer_contextual, ContextualCorpus};
    use dtdinfer_xml::infer::InferenceEngine;
    let mut corpus = ContextualCorpus::new();
    for i in 0..200 {
        let doc = format!(
            "<dealer><new><car><model/><price/></car></new>             <used><car><model/><mileage/><price/></car>{}</used></dealer>",
            if i % 2 == 0 { "<car><model/><mileage/><price/></car>" } else { "" }
        );
        corpus.add_document(&doc).expect("well-formed");
    }
    c.bench_function("contextual_dealer_200docs", |bch| {
        bch.iter(|| black_box(infer_contextual(black_box(&corpus), InferenceEngine::Crx)))
    });
}

criterion_group!(
    benches,
    bench_xml_parse,
    bench_dfa_equivalence,
    bench_state_elimination,
    bench_sampler,
    bench_minimization,
    bench_census,
    bench_contextual
);
criterion_main!(benches);
