//! End-to-end tests for the `perfgate` binary: a quick run must produce a
//! parseable BENCH report covering the whole suite, comparing a report
//! against itself must pass, and an injected 2x regression must trip the
//! gate with a nonzero exit.

use dtdinfer_obs::bench::BenchReport;
use std::path::{Path, PathBuf};
use std::process::Command;

fn perfgate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_perfgate"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perfgate_test_{}_{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_quick(out: &Path) -> String {
    let output = perfgate()
        .args(["--quick", "--reps", "2", "--label", "test"])
        .arg("--out")
        .arg(out)
        .output()
        .expect("perfgate runs");
    assert!(
        output.status.success(),
        "perfgate --quick failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf8 stdout")
}

#[test]
fn quick_run_writes_a_valid_full_coverage_report() {
    let dir = scratch("run");
    let out = dir.join("BENCH_test.json");
    let stdout = run_quick(&out);
    assert!(stdout.contains("wrote "), "summary line present: {stdout}");

    let text = std::fs::read_to_string(&out).expect("report written");
    let report = BenchReport::parse(&text).expect("report parses");
    assert_eq!(report.label, "test");
    assert_ne!(report.commit, "", "commit field populated");
    assert!(report.cores >= 1);
    assert!(report.created_unix > 1_700_000_000, "plausible timestamp");

    // The quick suite covers every pipeline stage at size 300.
    for phase in [
        "tinf",
        "idtd",
        "crx",
        "extract.n300",
        "ingest.n300.j1",
        "ingest.n300.j2",
        "ingest.n300.j4",
        "ingest.n300.j8",
        "ingest.mb.j1",
        "ingest.mb.j2",
        "ingest.mb.j4",
        "ingest.mb.j8",
    ] {
        let p = report
            .phases
            .get(phase)
            .unwrap_or_else(|| panic!("phase {phase} in report; got {:?}", report.phases.keys()));
        assert_eq!(p.reps, 2);
        assert!(p.p50_ns > 0, "{phase} measured");
        assert!(
            p.p50_ns <= p.p95_ns && p.p95_ns <= p.max_ns,
            "{phase} order"
        );
    }
    // Corpus phases carry throughput, learner phases don't.
    assert!(report.phases["ingest.n300.j4"].docs_per_sec.is_some());
    assert!(report.phases["ingest.n300.j4"].mb_per_sec.is_some());
    assert!(report.phases["tinf"].docs_per_sec.is_none());

    // The multi-MB scaling corpus really is multi-MB: docs/s and MB/s are
    // present and the per-rep duration is large enough to be meaningful
    // (4 MiB at even 1 GB/s is > 4 ms).
    let mb = &report.phases["ingest.mb.j1"];
    assert!(mb.docs_per_sec.is_some() && mb.mb_per_sec.is_some());
    assert!(
        mb.p50_ns > 1_000_000,
        "multi-MB phase is not trivially fast"
    );

    // The instrumented pass pulled pipeline counters and per-worker
    // gauges into the report.
    assert!(
        report
            .counters
            .keys()
            .any(|k| k.starts_with("engine_worker_")),
        "worker gauges present: {:?}",
        report.counters.keys()
    );
    assert!(
        !report
            .counters
            .keys()
            .any(|k| k.starts_with("engine.worker.")),
        "dot-numbered worker gauges are gone: {:?}",
        report.counters.keys()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_passes_on_identical_reports_and_gates_a_2x_regression() {
    let dir = scratch("compare");
    let baseline = dir.join("baseline.json");
    run_quick(&baseline);

    // Self-comparison: zero exit, no regressions.
    let ok = perfgate()
        .arg("compare")
        .args([&baseline, &baseline])
        .output()
        .expect("compare runs");
    assert!(
        ok.status.success(),
        "self-compare must pass: {}",
        String::from_utf8_lossy(&ok.stdout)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("no gated regressions"));

    // Inject a 2x slowdown into the slowest phase — well above the 10µs
    // noise floor — and the gate must fail at the default 15% threshold.
    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    let mut report = BenchReport::parse(&text).expect("baseline parses");
    let slowest = report
        .phases
        .iter()
        .max_by_key(|(_, p)| p.p50_ns)
        .map(|(name, _)| name.clone())
        .expect("phases present");
    let p = report.phases.get_mut(&slowest).expect("slowest phase");
    assert!(
        p.p50_ns > 10 * dtdinfer_obs::bench::MIN_TIME_DELTA_NS,
        "slowest phase dwarfs the noise floor ({} ns)",
        p.p50_ns
    );
    p.p50_ns *= 2;
    p.p95_ns *= 2;
    p.max_ns *= 2;
    let candidate = dir.join("candidate.json");
    std::fs::write(&candidate, format!("{}\n", report.json())).expect("write candidate");

    let bad = perfgate()
        .arg("compare")
        .args([&baseline, &candidate])
        .output()
        .expect("compare runs");
    assert!(
        !bad.status.success(),
        "2x regression must trip the gate: {}",
        String::from_utf8_lossy(&bad.stdout)
    );
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains(&format!("REGRESSION {slowest}")),
        "names the regressed phase: {stdout}"
    );

    // A generous threshold lets the same candidate through.
    let lax = perfgate()
        .args(["compare", "--threshold", "150"])
        .args([&baseline, &candidate])
        .output()
        .expect("compare runs");
    assert!(
        lax.status.success(),
        "150% threshold tolerates 2x: {}",
        String::from_utf8_lossy(&lax.stdout)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_downgrades_parallel_regressions_when_baseline_cores_mismatch() {
    let dir = scratch("cores");
    let candidate = dir.join("candidate.json");
    run_quick(&candidate);

    // Build a baseline that is 2x faster than the candidate in one
    // parallel phase and one serial phase — i.e. the candidate "regressed"
    // both — and that claims a different core count than this host.
    let text = std::fs::read_to_string(&candidate).expect("candidate written");
    let mut base = BenchReport::parse(&text).expect("candidate parses");
    for phase in ["ingest.mb.j4", "extract.n300"] {
        let p = base.phases.get_mut(phase).expect(phase);
        p.p50_ns /= 2;
        p.p95_ns /= 2;
        p.max_ns /= 2;
        p.docs_per_sec = p.docs_per_sec.map(|d| d * 2.0);
        p.mb_per_sec = p.mb_per_sec.map(|m| m * 2.0);
    }
    let mismatched = dir.join("baseline_mismatched.json");
    base.cores += 1;
    std::fs::write(&mismatched, format!("{}\n", base.json())).expect("write baseline");

    // Mismatched cores: the serial regression still trips the gate, the
    // parallel one is only a warning.
    let out = perfgate()
        .arg("compare")
        .args([&mismatched, &candidate])
        .output()
        .expect("compare runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "serial regression gates: {stdout}");
    assert!(
        stdout.contains("REGRESSION extract.n300"),
        "serial phase stays hard: {stdout}"
    );
    assert!(
        stdout.contains("warning ingest.mb.j4") && !stdout.contains("REGRESSION ingest.mb.j4"),
        "parallel phase downgraded: {stdout}"
    );
    assert!(
        stdout.contains("downgrade to warnings"),
        "mismatch is announced: {stdout}"
    );

    // With only the parallel regression left, the mismatched compare
    // passes outright.
    let serial = base.phases.get_mut("extract.n300").expect("serial phase");
    *serial = BenchReport::parse(&text).expect("candidate parses").phases["extract.n300"].clone();
    let parallel_only = dir.join("baseline_parallel_only.json");
    std::fs::write(&parallel_only, format!("{}\n", base.json())).expect("write baseline");
    let out = perfgate()
        .arg("compare")
        .args([&parallel_only, &candidate])
        .output()
        .expect("compare runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "parallel-only regressions pass on a mismatched host: {stdout}"
    );
    assert!(
        stdout.contains("advisory"),
        "advisory count shown: {stdout}"
    );

    // Matching cores: the same parallel regression is a hard failure.
    base.cores -= 1;
    let matched = dir.join("baseline_matched.json");
    std::fs::write(&matched, format!("{}\n", base.json())).expect("write baseline");
    let out = perfgate()
        .arg("compare")
        .args([&matched, &candidate])
        .output()
        .expect("compare runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "same-host parallel regression still gates: {stdout}"
    );
    assert!(stdout.contains("REGRESSION ingest.mb.j4"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_rejects_missing_and_malformed_inputs() {
    let dir = scratch("errors");
    let missing = perfgate()
        .args(["compare", "no_such_a.json", "no_such_b.json"])
        .output()
        .expect("compare runs");
    assert_eq!(missing.status.code(), Some(2), "I/O error exits 2");

    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{not json").expect("write garbage");
    let malformed = perfgate()
        .arg("compare")
        .args([&garbage, &garbage])
        .output()
        .expect("compare runs");
    assert_eq!(malformed.status.code(), Some(2), "parse error exits 2");

    let unknown = perfgate().arg("--bogus").output().expect("perfgate runs");
    assert_eq!(unknown.status.code(), Some(2), "unknown flag exits 2");

    std::fs::remove_dir_all(&dir).ok();
}
