//! Experiment harness for the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact of the evaluation
//! section (see `DESIGN.md` for the full index):
//!
//! * `fig1_blowup` — §1.3: state-elimination expression (†) vs SORE (‡);
//! * `table1` — Table 1 (Protein Sequence Database / Mondial elements);
//! * `table2` — Table 2 (sophisticated real-world expressions);
//! * `figure4` — Figure 4 (success fraction vs subsample size, CSV);
//! * `critical_size` — §8.2 (O(n) vs n² sample-size claims);
//! * `perf_table` — §8.3 (wall-clock comparison, xtract crash point).
//!
//! Criterion micro-benchmarks live in `benches/`.

use std::time::{Duration, Instant};

/// Times one closure invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}

/// Truncates long expression renderings for table cells.
pub fn clip(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_owned();
    }
    let prefix: String = s.chars().take(max.saturating_sub(1)).collect();
    format!("{prefix}…")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_behaviour() {
        assert_eq!(clip("short", 10), "short");
        assert_eq!(clip("0123456789abc", 6), "01234…");
    }

    #[test]
    fn fmt_duration_units() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(fmt_duration(Duration::from_micros(7)).ends_with(" µs"));
    }
}
