//! Experiment harness for the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact of the evaluation
//! section (see `DESIGN.md` for the full index):
//!
//! * `fig1_blowup` — §1.3: state-elimination expression (†) vs SORE (‡);
//! * `table1` — Table 1 (Protein Sequence Database / Mondial elements);
//! * `table2` — Table 2 (sophisticated real-world expressions);
//! * `figure4` — Figure 4 (success fraction vs subsample size, CSV);
//! * `critical_size` — §8.2 (O(n) vs n² sample-size claims);
//! * `perf_table` — §8.3 (wall-clock comparison, xtract crash point).
//!
//! Criterion micro-benchmarks live in `benches/`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::time::{Duration, Instant};

/// Times one closure invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// One synthetic "publication record" document. The shape exercises every
/// engine path: nested element structure, optional/repeated children,
/// attributes, text content, and an occasional empty element.
fn synth_document(rng: &mut StdRng, i: usize) -> String {
    let mut doc = String::with_capacity(512);
    doc.push_str(&format!("<library id=\"L{i}\">"));
    for _ in 0..rng.gen_range(1..=4) {
        doc.push_str("<book>");
        doc.push_str(&format!("<title>Volume {}</title>", rng.gen_range(1..500)));
        for a in 0..rng.gen_range(1..=3) {
            doc.push_str(&format!("<author>Writer {a}</author>"));
        }
        doc.push_str(&format!("<year>{}</year>", rng.gen_range(1950..2026)));
        if rng.gen_bool(0.7) {
            doc.push_str(&format!(
                "<publisher>House {}</publisher>",
                rng.gen_range(0..20)
            ));
        } else {
            doc.push_str("<self-published/>");
        }
        if rng.gen_bool(0.5) {
            doc.push_str(&format!("<price>{}.99</price>", rng.gen_range(5..80)));
        }
        doc.push_str("</book>");
    }
    doc.push_str("</library>");
    doc
}

/// A deterministic synthetic corpus of `n` documents — the shared workload
/// of the `scaling` and `perfgate` binaries, so their numbers are
/// comparable.
pub fn synth_corpus(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|i| synth_document(&mut rng, i)).collect()
}

/// A deterministic synthetic corpus of at least `min_bytes` total XML —
/// the multi-megabyte ingestion workload behind perfgate's `ingest.mb.*`
/// phases. Documents come from the same generator as [`synth_corpus`],
/// so the per-document shape (and thus the inferred schema) is the same;
/// only the corpus is sized by bytes instead of document count.
pub fn synth_corpus_bytes(min_bytes: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut docs = Vec::new();
    let mut total = 0usize;
    for i in 0.. {
        if total >= min_bytes {
            break;
        }
        let doc = synth_document(&mut rng, i);
        total += doc.len();
        docs.push(doc);
    }
    docs
}

/// Runs `f` with metrics recording enabled against a clean registry and
/// returns its result together with the snapshot of everything it
/// recorded. Recording is switched back off afterwards.
pub fn with_metrics<T>(f: impl FnOnce() -> T) -> (T, dtdinfer_obs::MetricsSnapshot) {
    dtdinfer_obs::enable(true, false);
    dtdinfer_obs::reset();
    let out = f();
    if dtdinfer_obs::alloc::compiled_in() && dtdinfer_obs::alloc::is_enabled() {
        dtdinfer_obs::alloc::publish_gauges();
    }
    let snap = dtdinfer_obs::snapshot();
    dtdinfer_obs::disable();
    (out, snap)
}

/// Writes a metrics snapshot as JSON to `target` — a file path, or `-` for
/// stdout. This is the one emit path shared by the CLI and the benchmark
/// binaries, so future `BENCH_*.json` artifacts stay format-compatible.
pub fn emit_metrics(snap: &dtdinfer_obs::MetricsSnapshot, target: &str) -> std::io::Result<()> {
    let json = snap.json();
    if target == "-" {
        let mut out = std::io::stdout().lock();
        out.write_all(json.as_bytes())?;
        out.write_all(b"\n")
    } else {
        std::fs::write(target, format!("{json}\n"))
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}

/// Truncates long expression renderings for table cells.
pub fn clip(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_owned();
    }
    let prefix: String = s.chars().take(max.saturating_sub(1)).collect();
    format!("{prefix}…")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_behaviour() {
        assert_eq!(clip("short", 10), "short");
        assert_eq!(clip("0123456789abc", 6), "01234…");
    }

    #[test]
    fn fmt_duration_units() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(fmt_duration(Duration::from_micros(7)).ends_with(" µs"));
    }

    #[test]
    fn synth_corpus_bytes_hits_the_size_floor_deterministically() {
        let a = synth_corpus_bytes(64 * 1024, 9);
        let b = synth_corpus_bytes(64 * 1024, 9);
        assert_eq!(a, b, "same seed, same corpus");
        let total: usize = a.iter().map(String::len).sum();
        assert!(total >= 64 * 1024, "at least min_bytes of XML: {total}");
        // The floor is crossed by at most one document.
        let without_last: usize = a[..a.len() - 1].iter().map(String::len).sum();
        assert!(without_last < 64 * 1024, "no overshoot beyond one document");
    }

    #[test]
    fn synth_corpus_is_deterministic_and_parses() {
        let a = synth_corpus(20, 42);
        let b = synth_corpus(20, 42);
        assert_eq!(a, b, "same seed, same corpus");
        assert_ne!(a, synth_corpus(20, 7), "different seed differs");
        let mut corpus = dtdinfer_xml::extract::Corpus::new();
        for doc in &a {
            corpus.add_document(doc).expect("synthetic corpus parses");
        }
        assert_eq!(corpus.num_documents, 20);
    }
}
