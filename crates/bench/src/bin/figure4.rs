//! Figure 4 reproduction: fraction of subsamples recovering the target
//! expression as a function of sample size, for crx / iDTD / rewrite, on
//! example2 (top), example4 (middle) and expression (‡) (bottom).
//!
//! Emits one CSV block per plot plus an ASCII rendering. The default of 50
//! trials per point finishes in ~10 minutes; `--trials 200` runs the
//! paper's exact protocol, `--fast` a 25-trial smoke pass.
//!
//! ```sh
//! cargo run --release -p dtdinfer-bench --bin figure4            # full
//! cargo run --release -p dtdinfer-bench --bin figure4 -- --fast  # quick
//! ```

use dtdinfer_gen::critical::{sweep, Learner, SweepPoint};
use dtdinfer_gen::generator::generate_sample;
use dtdinfer_gen::scenarios::figure4;
use dtdinfer_regex::alphabet::Sym;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trials = 50usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => trials = 25,
            "--trials" => {
                trials = it.next().and_then(|v| v.parse().ok()).expect("--trials N");
            }
            other => panic!("unknown option {other:?}"),
        }
    }

    for (scenario, max_size) in figure4() {
        let b = scenario.build();
        let base = generate_sample(&b.data, scenario.sample_size, 0xf19 ^ max_size as u64);
        let required: Vec<Sym> = b.alphabet.symbols().collect();
        // 12 sizes, log-ish spacing from tiny to the full plot range.
        let sizes: Vec<usize> = (1..=12)
            .map(|i| ((max_size as f64) * (i as f64 / 12.0).powi(2)).round() as usize)
            .map(|s| s.max(required.len() / 2 + 2))
            .collect();

        println!(
            "# Figure 4 — {} (trials per point: {trials})",
            scenario.name
        );
        println!("size,crx,idtd,rewrite");
        let mut series: Vec<(Learner, Vec<SweepPoint>)> = Vec::new();
        for learner in Learner::ALL {
            let target = learner
                .target(&base)
                .expect("target inferable from the representative base");
            let pts = sweep(learner, &base, &target, &required, &sizes, trials, 99);
            series.push((learner, pts));
        }
        for (i, &size) in sizes.iter().enumerate() {
            let row: Vec<String> = series
                .iter()
                .map(|(_, pts)| format!("{:.3}", pts[i].fraction))
                .collect();
            println!("{size},{}", row.join(","));
        }
        println!();
        ascii_plot(&series, &sizes);
        println!();
    }
}

/// Rough terminal rendering of the three series.
fn ascii_plot(series: &[(Learner, Vec<SweepPoint>)], sizes: &[usize]) {
    const ROWS: usize = 10;
    let marks = ['c', 'i', 'r'];
    for row in (0..=ROWS).rev() {
        let level = row as f64 / ROWS as f64;
        let mut line = String::new();
        for i in 0..sizes.len() {
            let mut cell = ' ';
            for ((_, pts), &mark) in series.iter().zip(&marks) {
                if (pts[i].fraction - level).abs() < 0.5 / ROWS as f64 {
                    cell = mark;
                }
            }
            line.push(cell);
            line.push(' ');
        }
        println!("{level:>4.1} |{line}");
    }
    let labels: Vec<String> = sizes.iter().map(|s| format!("{s}")).collect();
    println!("      sizes: {}", labels.join(" "));
    println!("      c = crx, i = idtd, r = rewrite");
}
