//! §8.2 generalization claims:
//!
//! * for `(a1+…+an)*`, crx needs `O(n)` length-2 substrings where rewrite
//!   needs all `n²` and iDTD around `n² − n`;
//! * concretely, "only 400 ≪ 1682 and 500 ≪ 3136 length-2 substrings are
//!   needed in the samples for crx to learn example3 and example4".
//!
//! This harness measures the number of *distinct 2-grams* present in the
//! smallest subsample from which each learner recovers its target.
//!
//! ```sh
//! cargo run --release -p dtdinfer-bench --bin critical_size
//! ```

use dtdinfer_gen::critical::{critical_size, sweep, Learner};
use dtdinfer_gen::generator::generate_sample;
use dtdinfer_gen::scenarios::table2;
use dtdinfer_gen::subsample::subsample_with_all_symbols;
use dtdinfer_regex::alphabet::{Sym, Word};
use std::collections::BTreeSet;

fn distinct_2grams(words: &[Word]) -> usize {
    let mut set: BTreeSet<(Sym, Sym)> = BTreeSet::new();
    for w in words {
        for p in w.windows(2) {
            set.insert((p[0], p[1]));
        }
    }
    set.len()
}

fn main() {
    let trials = 40;
    println!("§8.2 — 2-grams needed to learn the wide-disjunction examples\n");
    for (idx, paper_pairs) in [(2usize, 1682usize), (3, 3136)] {
        let s = &table2()[idx];
        let b = s.build();
        let base = generate_sample(&b.data, s.sample_size, 0xc417 ^ idx as u64);
        let required: Vec<Sym> = b.alphabet.symbols().collect();
        let n_disj = if idx == 2 { 41 } else { 56 };
        println!(
            "── {} (disjunction width n = {n_disj}, n² = {paper_pairs}) ──",
            s.name
        );
        let sizes: Vec<usize> = [60, 120, 250, 400, 700, 1200, 2000, 3500, s.sample_size]
            .into_iter()
            .filter(|&k| k <= s.sample_size)
            .collect();
        for learner in [Learner::Crx, Learner::Idtd] {
            let target = learner.target(&base).expect("target");
            let pts = sweep(learner, &base, &target, &required, &sizes, trials, 31);
            let crit = critical_size(&pts);
            match crit {
                Some(k) => {
                    // Measure 2-gram content of subsamples at that size.
                    let grams: Vec<usize> = (0..5)
                        .map(|t| {
                            distinct_2grams(&subsample_with_all_symbols(
                                &base,
                                k,
                                &required,
                                1000 + t,
                            ))
                        })
                        .collect();
                    let avg = grams.iter().sum::<usize>() / grams.len();
                    println!(
                        "  {:<6} critical size {k:>5} strings  (~{avg} distinct 2-grams, \
                         vs n² = {paper_pairs})",
                        learner.name()
                    );
                }
                None => println!(
                    "  {:<6} does not converge within {} strings",
                    learner.name(),
                    s.sample_size
                ),
            }
        }
        println!();
    }
    println!(
        "paper: crx learned example3 from samples holding 400 ≪ 1682 2-grams and\n\
         example4 from 500 ≪ 3136; iDTD needs close to the full n² − n."
    );
}
