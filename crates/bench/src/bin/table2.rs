//! Table 2 reproduction: sophisticated real-world expressions outside the
//! CHARE class, on generated data.
//!
//! ```sh
//! cargo run --release -p dtdinfer-bench --bin table2
//! ```

use dtdinfer_automata::dfa::{regex_equiv, regex_subset};
use dtdinfer_baselines::xtract::{xtract, XtractConfig};
use dtdinfer_bench::clip;
use dtdinfer_core::crx::crx;
use dtdinfer_core::idtd::idtd_from_words;
use dtdinfer_gen::generator::generate_sample;
use dtdinfer_gen::scenarios::table2;
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::display::render;
use dtdinfer_regex::normalize::equiv_commutative;

fn verdict(got: &Regex, expected: &Regex, data: &Regex) -> String {
    if equiv_commutative(got, expected) {
        "= paper".to_owned()
    } else if regex_equiv(got, expected) {
        "≡ paper (syntax differs)".to_owned()
    } else if regex_subset(data, got) {
        "superset of data (repair order differs from paper)".to_owned()
    } else {
        "DIFFERS".to_owned()
    }
}

fn main() {
    println!("Table 2 — expressions from real-world DTDs, generated data\n");
    for s in table2() {
        let b = s.build();
        let sample = generate_sample(&b.data, s.sample_size, 0x7ab2 ^ s.sample_size as u64);
        let crx_got = crx(&sample).into_regex().expect("crx");
        let idtd_got = idtd_from_words(&sample).into_regex().expect("idtd");
        let xtract_sample: Vec<_> = sample
            .iter()
            .take(s.xtract_size.unwrap_or(s.sample_size))
            .cloned()
            .collect();
        let xtract_out = xtract(&xtract_sample, &XtractConfig::default());

        println!(
            "── {} (sample {}, {} symbols) ──",
            s.name,
            s.sample_size,
            b.alphabet.len()
        );
        println!("  original     : {}", clip(s.original, 70));
        println!(
            "  crx          : {:<58} [{}]",
            clip(&render(&crx_got, &b.alphabet), 58),
            verdict(&crx_got, &b.expected_crx, &b.data)
        );
        println!(
            "  idtd         : {:<58} [{}]",
            clip(&render(&idtd_got, &b.alphabet), 58),
            verdict(&idtd_got, &b.expected_idtd, &b.data)
        );
        match &xtract_out {
            Ok(r) => println!(
                "  xtract ({:>4}): {} tokens — {}",
                xtract_sample.len(),
                r.token_count(),
                clip(&render(r, &b.alphabet), 50)
            ),
            Err(e) => println!("  xtract ({:>4}): {e}", xtract_sample.len()),
        }
        println!("  paper xtract : {}", s.reported_xtract);

        // Conciseness comparison (the paper's core argument): SORE/CHARE
        // outputs are linear in the alphabet, xtract's are not.
        if let Ok(r) = &xtract_out {
            println!(
                "  token counts : crx {} / idtd {} / xtract {}",
                crx_got.token_count(),
                idtd_got.token_count(),
                r.token_count()
            );
        }
        println!();
    }
}
