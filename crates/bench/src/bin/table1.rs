//! Table 1 reproduction: element definitions from the Protein Sequence
//! Database and Mondial corpora.
//!
//! For each element: generate a sample of the published size from the
//! data-characteristic expression, run crx, iDTD, the Trang-like baseline
//! and xtract, and print the results next to the paper's.
//!
//! ```sh
//! cargo run --release -p dtdinfer-bench --bin table1
//! ```

use dtdinfer_automata::dfa::regex_equiv;
use dtdinfer_baselines::trang::trang;
use dtdinfer_baselines::xtract::{xtract, XtractConfig};
use dtdinfer_bench::clip;
use dtdinfer_core::crx::crx;
use dtdinfer_core::idtd::idtd_from_words;
use dtdinfer_gen::generator::generate_sample;
use dtdinfer_gen::scenarios::table1;
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::display::render;
use dtdinfer_regex::normalize::equiv_commutative;

fn verdict(got: &Regex, expected: &Regex) -> &'static str {
    if equiv_commutative(got, expected) {
        "= paper"
    } else if regex_equiv(got, expected) {
        "≡ paper (syntax differs)"
    } else {
        "DIFFERS"
    }
}

fn main() {
    println!("Table 1 — real-world element definitions\n");
    for s in table1() {
        let b = s.build();
        let sample = generate_sample(&b.data, s.sample_size, 0xd7d1 ^ s.sample_size as u64);
        let crx_got = crx(&sample).into_regex().expect("crx");
        let idtd_got = idtd_from_words(&sample).into_regex().expect("idtd");
        let trang_got = trang(&sample).into_regex().expect("trang");
        let xtract_sample: Vec<_> = sample
            .iter()
            .take(s.xtract_size.unwrap_or(s.sample_size))
            .cloned()
            .collect();
        let xtract_out = xtract(&xtract_sample, &XtractConfig::default());

        println!("── {} (sample size {}) ──", s.name, s.sample_size);
        println!("  original DTD : {}", s.original);
        println!(
            "  crx          : {:<55} [{}]",
            clip(&render(&crx_got, &b.alphabet), 55),
            verdict(&crx_got, &b.expected_crx)
        );
        println!(
            "  idtd         : {:<55} [{}]",
            clip(&render(&idtd_got, &b.alphabet), 55),
            verdict(&idtd_got, &b.expected_idtd)
        );
        println!(
            "  trang-like   : {:<55} [{}]",
            clip(&render(&trang_got, &b.alphabet), 55),
            verdict(&trang_got, &b.expected_crx)
        );
        match xtract_out {
            Ok(r) => println!(
                "  xtract       : {} tokens — {}",
                r.token_count(),
                clip(&render(&r, &b.alphabet), 55)
            ),
            Err(e) => println!("  xtract       : {e}"),
        }
        println!("  paper xtract : {}", s.reported_xtract);
        println!();
    }
}
