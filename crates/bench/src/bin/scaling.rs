//! Worker-pool scaling benchmark: ingest a synthetic corpus with 1, 2, 4,
//! and 8 shards and report wall-clock speedup over the sequential run.
//!
//! ```sh
//! cargo run --release -p dtdinfer-bench --bin scaling            # 10k docs
//! cargo run --release -p dtdinfer-bench --bin scaling -- --quick # CI-sized
//! cargo run --release -p dtdinfer-bench --bin scaling -- --docs 50000
//! ```
//!
//! Besides timing, every run checks that the DTD derived from each worker
//! count is byte-identical to the sequential one — the engine's core
//! guarantee — and fails loudly if not. Speedups are whatever the host
//! actually delivers: on a single-core machine the parallel runs only add
//! scheduling and merge overhead, and the table will honestly say so.

use dtdinfer_bench::synth_corpus;
use dtdinfer_engine::pool::ingest;
use dtdinfer_xml::infer::InferenceEngine;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut docs = 10_000usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => docs = 500,
            "--docs" => {
                docs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--docs needs a number");
            }
            other => {
                eprintln!("usage: scaling [--quick | --docs N] (unknown {other:?})");
                std::process::exit(2);
            }
        }
    }

    let corpus = synth_corpus(docs, 42);
    let bytes: usize = corpus.iter().map(String::len).sum();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "scaling: {docs} documents, {:.1} MiB, {cores} core(s) available",
        bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "{:>5} {:>12} {:>12} {:>9} {:>10}",
        "jobs", "ingest", "merge", "speedup", "identical"
    );

    let mut baseline: Option<(f64, String)> = None;
    for jobs in [1usize, 2, 4, 8] {
        let started = Instant::now();
        let ingested = ingest(&corpus, jobs).expect("synthetic corpus parses");
        let elapsed = started.elapsed().as_secs_f64();
        let dtd = ingested.state.derive(InferenceEngine::Idtd).0.serialize();
        let (base_secs, base_dtd) = baseline.get_or_insert((elapsed, dtd.clone()));
        let identical = dtd == *base_dtd;
        println!(
            "{jobs:>5} {:>12} {:>12} {:>8.2}x {:>10}",
            format!("{:.0} ms", elapsed * 1e3),
            format!("{:.1} ms", ingested.merge_ns as f64 / 1e6),
            *base_secs / elapsed,
            if identical { "yes" } else { "NO" },
        );
        assert!(identical, "jobs {jobs} derived a different DTD");
    }
    if cores == 1 {
        println!("note: single-core host; speedups above reflect overhead only");
    }
}
