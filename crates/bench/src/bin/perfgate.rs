//! Perf-gate harness: measures a fixed suite of representative workloads
//! and persists the numbers as a machine-readable `BENCH_<label>.json`, so
//! every later performance PR has a baseline to be compared against — and
//! CI can fail when a tracked metric regresses.
//!
//! ```sh
//! # Measure (writes BENCH_local.json):
//! cargo run --release -p dtdinfer-bench --bin perfgate
//! # CI-sized run with an explicit artifact path:
//! cargo run --release -p dtdinfer-bench --bin perfgate -- --quick --out BENCH_ci.json
//! # Gate: nonzero exit when any tracked metric regresses > threshold %:
//! cargo run --release -p dtdinfer-bench --bin perfgate -- \
//!     compare bench/baseline.json BENCH_ci.json --threshold 15
//! ```
//!
//! The suite covers the pipeline's hot paths end to end: raw pull-parse
//! throughput (borrowed events vs the owned-event shim — the zero-copy
//! gap), corpus extraction, 2T-INF SOA construction, the iDTD rewrite,
//! CRX, and sharded engine ingestion at `--jobs 1/2/4/8` over synthetic
//! corpora of several sizes — including a fixed multi-megabyte corpus
//! (`ingest.mb.jN`) sized so parallel speedup is visible at all.
//! Each phase runs N repetitions and reports nearest-rank
//! p50/p95/max plus docs/s and MB/s throughput where a corpus is
//! processed; one extra instrumented repetition captures the obs
//! registry's counters (and per-worker gauges) into the report. See the
//! "Performance tracking" section of `EXPERIMENTS.md` for the field
//! reference and the baseline-refresh workflow.

use dtdinfer_automata::soa::Soa;
use dtdinfer_bench::{synth_corpus, synth_corpus_bytes};
use dtdinfer_core::crx::crx;
use dtdinfer_core::idtd::idtd;
use dtdinfer_engine::pool::ingest;
use dtdinfer_obs::bench::{compare, phase_jobs, BenchReport, PhaseStats, SCHEMA_VERSION};
use dtdinfer_regex::alphabet::{Alphabet, Word};
use dtdinfer_xml::extract::Corpus;
use dtdinfer_xml::infer::InferenceEngine;
use dtdinfer_xml::parser::XmlPullParser;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// The paper's Figure 2 target expression — the canonical iDTD workload.
const PAPER_EXPR: &str = "((b? (a | c))+ d)+ e";

/// Size floor of the `ingest.mb.*` corpus. The small `ingest.nN.jN`
/// phases are dominated by pool spin-up, so they cannot show parallel
/// speedup; this corpus is big enough (~8k documents) that worker busy
/// time dwarfs coordination, which is what the `--jobs` scaling claim in
/// ROADMAP is actually about. Identical in quick and full mode so the
/// numbers are comparable across every report.
const MB_CORPUS_BYTES: usize = 4 * 1024 * 1024;

/// Seed for the `ingest.mb.*` corpus — distinct from the `nN` corpora so
/// the two workloads cannot be conflated.
const MB_CORPUS_SEED: u64 = 1234;

// Memory accounting: with the default `alloc-count` feature the harness
// installs the counting allocator, so every phase's high-water heap mark
// lands in the report as `peak_alloc_bytes`.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: dtdinfer_obs::alloc::CountingAlloc = dtdinfer_obs::alloc::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.first().map(String::as_str) == Some("compare") {
        cmd_compare(&args[1..])
    } else {
        cmd_run(&args)
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("perfgate: {e}");
            ExitCode::from(2)
        }
    }
}

/// Workload scale, fixed per mode so runs are comparable over time.
struct Suite {
    /// Synthetic corpus sizes (documents) for extraction and ingestion.
    corpus_sizes: Vec<usize>,
    /// Sample size for the word-level learners (2T-INF, iDTD, CRX).
    words: usize,
    /// Timed repetitions per phase.
    reps: usize,
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut label = "local".to_owned();
    let mut out: Option<String> = None;
    let mut reps_override: Option<usize> = None;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--label" => label = it.next().ok_or("--label needs a value")?.to_owned(),
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.to_owned()),
            "--reps" => {
                reps_override = Some(
                    it.next()
                        .ok_or("--reps needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --reps: {e}"))?,
                );
            }
            other => {
                return Err(format!(
                    "unknown option {other:?} \
                     (usage: perfgate [--quick] [--label L] [--out FILE] [--reps N] \
                     | perfgate compare BASELINE CANDIDATE [--threshold PCT])"
                ));
            }
        }
    }
    let suite = if quick {
        Suite {
            corpus_sizes: vec![300],
            words: 500,
            reps: reps_override.unwrap_or(3),
        }
    } else {
        Suite {
            corpus_sizes: vec![2_000, 10_000],
            words: 5_000,
            reps: reps_override.unwrap_or(7),
        }
    };
    let out = out.unwrap_or_else(|| format!("BENCH_{label}.json"));

    let report = run_suite(&label, &suite);
    for (name, p) in &report.phases {
        let throughput = match p.docs_per_sec {
            Some(d) => format!("  {d:>10.0} docs/s"),
            None => String::new(),
        };
        println!(
            "{name:<20} p50 {:>10}  p95 {:>10}{throughput}",
            fmt_ns(p.p50_ns),
            fmt_ns(p.p95_ns)
        );
    }
    std::fs::write(&out, format!("{}\n", report.json())).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {out} ({} phases, commit {}, {} reps/phase)",
        report.phases.len(),
        report.commit,
        suite.reps
    );
    Ok(ExitCode::SUCCESS)
}

/// Runs the whole fixed suite and assembles the report.
fn run_suite(label: &str, suite: &Suite) -> BenchReport {
    let mut phases: BTreeMap<String, PhaseStats> = BTreeMap::new();
    dtdinfer_obs::alloc::enable();

    // The overhead gate: with every obs flag off, instrumentation calls
    // on the hot path must compile down to a load-and-branch. A future
    // change that makes the disabled path allocate, lock, or record
    // shows up here as a time (or memory) regression.
    debug_assert!(!dtdinfer_obs::is_enabled());
    phases.insert(
        "obs.noop".to_owned(),
        time_phase(suite.reps, None, || {
            let mut acc = 0u64;
            for i in 0..1_000_000u64 {
                dtdinfer_obs::count("bench.noop", 1);
                dtdinfer_obs::gauge("bench.noop.gauge", i);
                let _span = dtdinfer_obs::span("bench.noop.span");
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc)
        }),
    );

    // Same gate for the labeled/flight-recorder entry points: labels are
    // only rendered and flight lines only copied after the one-atomic
    // check passes, so disabled they must cost the same as the bare calls.
    debug_assert!(!dtdinfer_obs::is_enabled());
    debug_assert!(!dtdinfer_obs::flightrec::enabled());
    phases.insert(
        "obs.noop.labeled".to_owned(),
        time_phase(suite.reps, None, || {
            let mut acc = 0u64;
            for i in 0..1_000_000u64 {
                dtdinfer_obs::count_with(
                    "bench.noop",
                    &[("route", "/x"), ("status_class", "2xx")],
                    1,
                );
                dtdinfer_obs::observe_with("bench.noop.ns", &[("route", "/x")], i);
                dtdinfer_obs::flightrec::record("access", "noop");
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc)
        }),
    );

    // Word-level learner workload: the paper expression's language,
    // sampled deterministically.
    let mut al = Alphabet::new();
    let expr = dtdinfer_regex::parser::parse(PAPER_EXPR, &mut al).expect("paper expression parses");
    let words: Vec<Word> = dtdinfer_gen::generator::generate_sample(&expr, suite.words, 7);
    let soa = Soa::learn(&words);

    phases.insert(
        "tinf".to_owned(),
        time_phase(suite.reps, None, || {
            black_box(Soa::learn(black_box(&words)))
        }),
    );
    phases.insert(
        "idtd".to_owned(),
        time_phase(suite.reps, None, || black_box(idtd(black_box(&soa)))),
    );
    phases.insert(
        "crx".to_owned(),
        time_phase(suite.reps, None, || black_box(crx(black_box(&words)))),
    );

    for &size in &suite.corpus_sizes {
        let corpus = synth_corpus(size, 42);
        let bytes: usize = corpus.iter().map(String::len).sum();
        let workload = Some((size as u64, bytes as u64));
        // Raw pull-parse throughput (MB/s), borrowed events only: the
        // zero-copy floor every higher layer builds on.
        phases.insert(
            format!("parse.n{size}"),
            time_phase(suite.reps, workload, || {
                let mut events = 0usize;
                for doc in &corpus {
                    let mut p = XmlPullParser::new(doc);
                    while let Some(ev) = p.next().expect("synthetic corpus parses") {
                        black_box(&ev);
                        events += 1;
                    }
                }
                black_box(events)
            }),
        );
        // The same stream with every event deep-copied through the owned
        // shim — what an owning parser would cost. The parse.nN /
        // parse.owned.nN gap is the zero-copy win.
        phases.insert(
            format!("parse.owned.n{size}"),
            time_phase(suite.reps, workload, || {
                let mut events = 0usize;
                for doc in &corpus {
                    let mut p = XmlPullParser::new(doc);
                    while let Some(ev) = p.next().expect("synthetic corpus parses") {
                        black_box(ev.to_owned_event());
                        events += 1;
                    }
                }
                black_box(events)
            }),
        );
        phases.insert(
            format!("extract.n{size}"),
            time_phase(suite.reps, workload, || {
                let mut c = Corpus::new();
                for doc in &corpus {
                    c.add_document(doc).expect("synthetic corpus parses");
                }
                black_box(c)
            }),
        );
        for jobs in [1usize, 2, 4, 8] {
            phases.insert(
                format!("ingest.n{size}.j{jobs}"),
                time_phase(suite.reps, workload, || {
                    black_box(ingest(black_box(&corpus), jobs).expect("synthetic corpus parses"))
                }),
            );
        }
    }

    // The multi-megabyte ingestion workload: end-to-end `ingest` at every
    // job count over a corpus large enough for parallelism to matter.
    // These are the phases the cross-core scaling claims are gated on
    // (docs_per_sec of `ingest.mb.j4` vs `ingest.mb.j1`); `perfgate
    // compare` treats their regressions as advisory when the baseline
    // came from a host with a different core count.
    {
        let corpus = synth_corpus_bytes(MB_CORPUS_BYTES, MB_CORPUS_SEED);
        let bytes: usize = corpus.iter().map(String::len).sum();
        let workload = Some((corpus.len() as u64, bytes as u64));
        for jobs in [1usize, 2, 4, 8] {
            phases.insert(
                format!("ingest.mb.j{jobs}"),
                time_phase(suite.reps, workload, || {
                    black_box(ingest(black_box(&corpus), jobs).expect("synthetic corpus parses"))
                }),
            );
        }
    }

    // One instrumented pass over the largest corpus pulls the pipeline
    // counters (and the engine's per-worker gauges) into the report.
    let largest = *suite.corpus_sizes.iter().max().expect("nonempty sizes");
    let corpus = synth_corpus(largest, 42);
    let (_, snap) = dtdinfer_bench::with_metrics(|| {
        let ingested = ingest(&corpus, 4).expect("synthetic corpus parses");
        black_box(ingested.state.derive(InferenceEngine::Idtd))
    });
    let mut counters = snap.counters;
    counters.extend(snap.gauges);
    dtdinfer_obs::alloc::disable();

    BenchReport {
        schema: SCHEMA_VERSION,
        label: label.to_owned(),
        commit: commit_hash(),
        os: std::env::consts::OS.to_owned(),
        arch: std::env::consts::ARCH.to_owned(),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        phases,
        counters,
    }
}

/// Times `reps` repetitions of `f` and summarizes them; `workload` is
/// `(docs, bytes)` processed per repetition, for throughput. With the
/// counting allocator compiled in, also records the worst per-rep heap
/// high-water mark as `peak_alloc_bytes`.
fn time_phase<T>(
    reps: usize,
    workload: Option<(u64, u64)>,
    mut f: impl FnMut() -> T,
) -> PhaseStats {
    let mut peaks: Vec<u64> = Vec::with_capacity(reps.max(1));
    let samples: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let mark = dtdinfer_obs::alloc::phase_begin();
            let started = Instant::now();
            black_box(f());
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            peaks.push(mark.peak_delta());
            ns
        })
        .collect();
    let mut stats = PhaseStats::from_samples(&samples, workload);
    if dtdinfer_obs::alloc::compiled_in() {
        stats.peak_alloc_bytes = peaks.into_iter().max();
    }
    stats
}

/// The current git commit, or `unknown` outside a repository.
fn commit_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn cmd_compare(args: &[String]) -> Result<ExitCode, String> {
    let mut threshold = 15.0f64;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?;
            }
            f if f.starts_with('-') => return Err(format!("unknown option {f:?}")),
            f => paths.push(f.to_owned()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err("usage: perfgate compare BASELINE CANDIDATE [--threshold PCT]".to_owned());
    };
    let read = |path: &str| -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        BenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read(baseline_path)?;
    let candidate = read(candidate_path)?;
    if baseline.schema < SCHEMA_VERSION {
        println!(
            "perfgate: warning: baseline {baseline_path} uses report schema {} \
             (current is {SCHEMA_VERSION}); phases without peak_alloc_bytes skip \
             the memory gate — refresh the baseline to arm it",
            baseline.schema
        );
    }
    let shared = baseline
        .phases
        .keys()
        .filter(|k| candidate.phases.contains_key(*k))
        .count();
    println!(
        "perfgate: {baseline_path} (commit {}) vs {candidate_path} (commit {}), \
         {shared} shared phase(s), threshold {threshold}%",
        baseline.commit, candidate.commit
    );
    // Parallel-phase (`*.jN`, N>1) numbers are a property of the host's
    // core count: a baseline captured on a 1-core box says nothing about
    // j4 scaling here. When the baseline's cores differ from this host,
    // those regressions are reported but do not fail the gate — serial
    // phases still do.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    let mismatch = baseline.cores != host_cores;
    if mismatch {
        println!(
            "perfgate: baseline has {} core(s), this host has {host_cores}: \
             parallel (*.jN) phase regressions downgrade to warnings",
            baseline.cores
        );
    }
    let (hard, advisory): (Vec<_>, Vec<_>) = compare(&baseline, &candidate, threshold)
        .into_iter()
        .partition(|r| !(mismatch && phase_jobs(&r.metric).is_some_and(|n| n > 1)));
    for r in &hard {
        println!(
            "  REGRESSION {}: {:.0} -> {:.0} ({:+.0}%)",
            r.metric, r.baseline, r.candidate, r.change_pct
        );
    }
    for r in &advisory {
        println!(
            "  warning {}: {:.0} -> {:.0} ({:+.0}%) — parallel phase on a \
             mismatched host, not gated",
            r.metric, r.baseline, r.candidate, r.change_pct
        );
    }
    if hard.is_empty() {
        println!(
            "no gated regressions beyond {threshold}% ({} advisory)",
            advisory.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!("{} regression(s)", hard.len());
        Ok(ExitCode::FAILURE)
    }
}

/// Adaptive duration rendering for the summary table.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{} µs", ns / 1_000),
        10_000_000..=9_999_999_999 => format!("{} ms", ns / 1_000_000),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}
