//! §8.3 performance reproduction.
//!
//! The paper (2.5 GHz P4, 512 MB, JVM start-up included): example4 — 61
//! symbols, 10000 strings — took 7 s with iDTD and 3.2 s with crx; typical
//! ~10-symbol expressions from a few hundred strings took about a second;
//! xtract could not handle more than 1000 strings. Absolute numbers are
//! hardware-bound; the *shape* to reproduce is crx ≤ iDTD ≪ xtract, with
//! xtract hitting a wall past 1000 strings.
//!
//! ```sh
//! cargo run --release -p dtdinfer-bench --bin perf_table
//! cargo run --release -p dtdinfer-bench --bin perf_table -- --metrics -
//! ```
//!
//! With `--metrics <FILE|->` the run records pipeline counters and timing
//! histograms and emits them as JSON through the same path the CLI's
//! `--metrics` flag uses.

use dtdinfer_baselines::trang::trang;
use dtdinfer_baselines::xtract::{xtract, XtractConfig};
use dtdinfer_bench::{fmt_duration, time_once};
use dtdinfer_core::crx::crx;
use dtdinfer_core::idtd::idtd_from_words;
use dtdinfer_gen::generator::generate_sample;
use dtdinfer_gen::scenarios::{table1, table2};

fn main() {
    let mut metrics_target: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => match args.next() {
                Some(t) => metrics_target = Some(t),
                None => {
                    eprintln!("--metrics needs a file argument (or - for stdout)");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown option {other:?} (only --metrics <FILE|-> is accepted)");
                std::process::exit(2);
            }
        }
    }
    if metrics_target.is_some() {
        dtdinfer_obs::enable(true, false);
        dtdinfer_obs::reset();
    }

    println!("§8.3 — wall-clock comparison (release build)\n");

    // example4: 61 symbols, 10000 strings.
    let s = &table2()[3];
    let b = s.build();
    let sample = generate_sample(&b.data, 10000, 0x9e7f);
    println!("example4 (61 symbols, 10000 strings):");
    let (_, d) = time_once(|| crx(&sample));
    println!(
        "  crx   : {:<10} (paper: 3.2 s on 2006 hardware)",
        fmt_duration(d)
    );
    let (_, d) = time_once(|| idtd_from_words(&sample));
    println!("  idtd  : {:<10} (paper: 7 s)", fmt_duration(d));
    let (_, d) = time_once(|| trang(&sample));
    println!("  trang : {}", fmt_duration(d));
    println!();

    // Typical ~10-symbol expression from a few hundred strings.
    let s = &table1()[0]; // ProteinEntry, 13 symbols
    let b = s.build();
    let sample = generate_sample(&b.data, 300, 0x41);
    println!(
        "typical element ({} symbols, 300 strings):",
        b.alphabet.len()
    );
    let (_, d) = time_once(|| crx(&sample));
    println!(
        "  crx   : {:<10} (paper: ~1 s incl. JVM start-up)",
        fmt_duration(d)
    );
    let (_, d) = time_once(|| idtd_from_words(&sample));
    println!("  idtd  : {}", fmt_duration(d));
    let (_, d) = time_once(|| trang(&sample));
    println!("  trang : {}", fmt_duration(d));
    println!();

    // xtract's wall: growth in time as distinct strings increase, then the
    // configured resource limit (modelling the >1 GB crash).
    println!("xtract scaling (distinct strings → time or failure):");
    let s = &table2()[1]; // example2: 18 symbols
    let b = s.build();
    for n in [50usize, 100, 200, 400, 800, 1200, 2500, 5000] {
        let sample = generate_sample(&b.data, n, 0x77);
        let mut distinct = sample.clone();
        distinct.sort();
        distinct.dedup();
        let (out, d) = time_once(|| xtract(&sample, &XtractConfig::default()));
        match out {
            Ok(r) => println!(
                "  {:>5} strings ({:>4} distinct): {:<10} → {} tokens",
                n,
                distinct.len(),
                fmt_duration(d),
                r.token_count()
            ),
            Err(e) => println!(
                "  {:>5} strings ({:>4} distinct): FAILED — {e}",
                n,
                distinct.len()
            ),
        }
    }
    println!("\npaper: \"xtract can not handle data sets with more than 1000 strings\"");

    if let Some(target) = metrics_target {
        if let Err(e) = dtdinfer_bench::emit_metrics(&dtdinfer_obs::snapshot(), &target) {
            eprintln!("failed to write metrics to {target}: {e}");
            std::process::exit(1);
        }
    }
}
