//! Ablation study of this implementation's design choices (beyond the
//! paper, indexed in DESIGN.md):
//!
//! 1. **Rewrite rule order** — self-loop last (default) vs first: Claim 2
//!    guarantees both succeed on SORE-equivalent automata, but the naive
//!    order emits `(a+|c+)+`-style superfluous operators.
//! 2. **The simplify post-pass** — how often it actually fires.
//! 3. **iDTD repair configuration** — the paper's fixed k=2 vs the
//!    unrestricted growing-k variant, on Figure-4-style subsample sweeps.
//!
//! ```sh
//! cargo run --release -p dtdinfer-bench --bin ablation
//! ```

use dtdinfer_core::rewrite::{rewrite_soa_with, RulePriority};
use dtdinfer_gen::critical::{critical_size, sweep, Learner};
use dtdinfer_gen::generator::generate_sample;
use dtdinfer_regex::alphabet::{numbered_alphabet, Sym};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::normalize::simplify;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random SORE over the given symbols (mirrors the integration-test
/// generator; duplicated here to keep the bench crate self-contained).
fn random_sore(rng: &mut StdRng, syms: &[Sym]) -> Regex {
    fn wrap(rng: &mut StdRng, r: Regex) -> Regex {
        match rng.gen_range(0..6) {
            0 => Regex::optional(r),
            1 => Regex::plus(r),
            2 => Regex::star(r),
            _ => r,
        }
    }
    fn build(rng: &mut StdRng, syms: &[Sym]) -> Regex {
        if syms.len() == 1 {
            return Regex::sym(syms[0]);
        }
        let groups = rng.gen_range(2..=syms.len().min(4));
        let mut cuts: Vec<usize> = Vec::new();
        while cuts.len() < groups - 1 {
            let c = rng.gen_range(1..syms.len());
            if !cuts.contains(&c) {
                cuts.push(c);
            }
        }
        cuts.sort_unstable();
        cuts.push(syms.len());
        let mut parts = Vec::new();
        let mut start = 0;
        for c in cuts {
            let sub = build(rng, &syms[start..c]);
            parts.push(wrap(rng, sub));
            start = c;
        }
        if rng.gen_bool(0.5) {
            Regex::concat(parts)
        } else {
            Regex::union(parts)
        }
    }
    let base = build(rng, syms);
    wrap(rng, base)
}

fn main() {
    rule_order_ablation();
    repair_config_ablation();
    ktestable_knob();
}

fn rule_order_ablation() {
    println!("── ablation 1: rewrite rule order (1000 random SOREs) ──");
    let mut rng = StdRng::seed_from_u64(2006);
    let mut last_tokens = 0usize;
    let mut first_tokens = 0usize;
    let mut first_larger = 0usize;
    let mut simplify_fired = 0usize;
    let trials = 1000;
    for t in 0..trials {
        let n = 2 + (t % 8);
        let (_, syms) = numbered_alphabet(n);
        let target = random_sore(&mut rng, &syms);
        let soa = dtdinfer_automata::glushkov::soa_of_sore(&target).expect("SORE");
        let with_last =
            rewrite_soa_with(&soa, RulePriority::SelfLoopLast).expect("Theorem 1: succeeds");
        let with_first = rewrite_soa_with(&soa, RulePriority::SelfLoopFirst)
            .expect("Claim 2: any order succeeds");
        last_tokens += with_last.token_count();
        first_tokens += with_first.token_count();
        if with_first.token_count() > with_last.token_count() {
            first_larger += 1;
        }
        if simplify(&with_first) != with_first {
            simplify_fired += 1;
        }
    }
    println!("  total tokens, self-loop last  : {last_tokens}");
    println!("  total tokens, self-loop first : {first_tokens}");
    println!(
        "  self-loop-first strictly larger on {first_larger}/{trials} inputs; \
         simplify pass fires on {simplify_fired} of its outputs"
    );
    println!();
}

fn ktestable_knob() {
    use dtdinfer_automata::ktestable::KTestable;
    println!();
    println!("── ablation 3: the k-testable specificity knob (§4's k = 2 choice) ──");
    // Train on half the sample, measure held-out acceptance for k = 1..5.
    let (_, _) = numbered_alphabet(0);
    let mut al = dtdinfer_regex::alphabet::Alphabet::new();
    let target = dtdinfer_regex::parser::parse("((b? (a|c))+ d)+ e", &mut al).expect("parses");
    let sample = generate_sample(&target, 400, 99);
    let (train, held_out) = sample.split_at(200);
    println!("k    held-out acceptance   descriptor size");
    for k in 1..=5usize {
        let kt = KTestable::learn(k, train);
        let accepted = held_out.iter().filter(|w| kt.accepts(w)).count();
        let size = kt.prefixes.len() + kt.suffixes.len() + kt.grams.len() + kt.shorts.len();
        println!(
            "{k}    {:>8.2}              {size:>6}",
            accepted as f64 / held_out.len() as f64
        );
    }
    println!(
        "k = 2 balances generalization and data need — and is the unique k
whose automaton is single occurrence, enabling the SORE translation."
    );
}

fn repair_config_ablation() {
    println!("── ablation 2: iDTD repair configuration, (‡) sweep ──");
    let (al, _) = numbered_alphabet(14);
    let mut parse_al = al.clone();
    let src = "(a1 (a2 | a3 | a4 | a5 | a6 | a7 | a8 | a9 | a10 | a11 | a12)+ (a13 | a14))+";
    let target = dtdinfer_regex::parser::parse(src, &mut parse_al).expect("parses");
    let base = generate_sample(&target, 900, 41);
    let required: Vec<Sym> = parse_al.symbols().collect();
    let sizes = [10usize, 20, 40, 80, 160, 320, 640, 900];
    println!("size      paper-k2   unrestricted");
    let paper_target = Learner::Idtd.target(&base).expect("target");
    let unrestricted_target = Learner::IdtdUnrestricted.target(&base).expect("target");
    let p = sweep(
        Learner::Idtd,
        &base,
        &paper_target,
        &required,
        &sizes,
        40,
        13,
    );
    let u = sweep(
        Learner::IdtdUnrestricted,
        &base,
        &unrestricted_target,
        &required,
        &sizes,
        40,
        13,
    );
    for ((pp, uu), size) in p.iter().zip(&u).zip(&sizes) {
        println!("{size:>5}     {:>8.2}   {:>12.2}", pp.fraction, uu.fraction);
    }
    println!(
        "critical sizes: paper-k2 {:?}, unrestricted {:?}",
        critical_size(&p),
        critical_size(&u)
    );
    // The verdict: both converge; the default rewrite post-passes and the
    // growing-k repairs dominate the fixed-k configuration or match it.
    println!();
    println!(
        "rewrite defaults: self-loop last + simplify keep outputs minimal;\n\
         the unrestricted repair schedule trades a slightly different repair\n\
         path for guaranteed success on adversarial automata."
    );
}
