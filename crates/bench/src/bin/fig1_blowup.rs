//! §1.3 demonstration: classical state elimination vs `rewrite` on the
//! Figure 1 automaton.
//!
//! The paper's JFLAP-produced expression (†) contains 180 alphabet-symbol
//! occurrences; the equivalent SORE (‡) `((b?(a|c))+d)+e` has 5. This
//! harness regenerates both from W = {bacacdacde, cbacdbacde, abccaadcde}
//! and verifies language equivalence.
//!
//! ```sh
//! cargo run --release -p dtdinfer-bench --bin fig1_blowup
//! ```

use dtdinfer_automata::dfa::soa_equiv_regex;
use dtdinfer_automata::soa::Soa;
use dtdinfer_automata::state_elim::{eliminate, eliminate_with_order};
use dtdinfer_core::rewrite::rewrite_soa;
use dtdinfer_regex::alphabet::Alphabet;
use dtdinfer_regex::display::render;

fn main() {
    let mut al = Alphabet::new();
    let words: Vec<_> = ["bacacdacde", "cbacdbacde", "abccaadcde"]
        .iter()
        .map(|w| al.word_from_chars(w))
        .collect();
    let soa = Soa::learn(&words);
    println!(
        "Figure 1 automaton: {} states, {} edges (incl. source/sink)\n",
        soa.num_states(),
        soa.num_edges()
    );

    let dagger = eliminate(&soa).into_regex().expect("non-empty language");
    let sore = rewrite_soa(&soa).expect("SORE-equivalent");

    println!("state elimination (†):");
    println!("  symbol occurrences : {}", dagger.symbol_count());
    println!("  token count        : {}", dagger.token_count());
    println!(
        "  expression         : {}",
        dtdinfer_bench::clip(&render(&dagger, &al), 120)
    );
    println!();
    println!("rewrite (‡):");
    println!("  symbol occurrences : {}", sore.symbol_count());
    println!("  token count        : {}", sore.token_count());
    println!("  expression         : {}", render(&sore, &al));
    println!();
    println!(
        "blow-up factor: {:.1}× symbol occurrences",
        dagger.symbol_count() as f64 / sore.symbol_count() as f64
    );
    println!("paper reports (†) with 180 symbol occurrences vs 5 for (‡)");

    assert!(soa_equiv_regex(&soa, &dagger), "(†) must match L(A)");
    assert!(soa_equiv_regex(&soa, &sore), "(‡) must match L(A)");
    println!("\nboth expressions verified language-equal to the automaton ✓");

    // Elimination-order sensitivity (the heuristics literature [16, 27]).
    println!("\nelimination-order sensitivity (symbol occurrences):");
    let fwd: Vec<_> = soa.states.iter().copied().collect();
    let rev: Vec<_> = soa.states.iter().rev().copied().collect();
    for (label, order) in [("ascending", fwd), ("descending", rev)] {
        let r = eliminate_with_order(&soa, &order).into_regex().unwrap();
        println!("  {label:<10} {:>5}", r.symbol_count());
    }
}
