//! The paper's experiment definitions: Table 1, Table 2, Figure 4.
//!
//! Each scenario records the *original* element definition printed in the
//! paper, the expression the sample data actually follows (for Table 1 the
//! paper describes how the corpus was stricter than the DTD — e.g. volume
//! and month being mutually exclusive in `refinfo`, `a11` missing from the
//! `genetics` sample), the sample sizes used, and the outputs the paper
//! reports for crx, iDTD, and xtract. The harness binaries in
//! `dtdinfer-bench` regenerate the tables from these definitions.
//!
//! Expressions are written in this workspace's syntax (`|` for the paper's
//! `+`-union).

use dtdinfer_regex::alphabet::Alphabet;
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::parser::parse;
use std::fmt::Write as _;

/// One table row: a named inference problem with published expectations.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Element name / example id from the paper.
    pub name: &'static str,
    /// The element definition as printed in the original DTD.
    pub original: &'static str,
    /// The expression the sample actually follows (differs from
    /// `original` where the paper says the corpus was stricter).
    pub data: &'static str,
    /// Sample size used for crx / iDTD.
    pub sample_size: usize,
    /// Sample size used for xtract (the paper capped it at 300–800 to
    /// avoid crashes); `None` = same as `sample_size`.
    pub xtract_size: Option<usize>,
    /// The crx output reported in the paper.
    pub expected_crx: &'static str,
    /// The iDTD output reported in the paper (same as crx in Table 1
    /// except `authors`).
    pub expected_idtd: &'static str,
    /// What the paper reports for xtract: an expression or a token count.
    pub reported_xtract: &'static str,
}

impl Scenario {
    /// Parses the four expressions into one shared alphabet.
    pub fn build(&self) -> BuiltScenario {
        let mut alphabet = Alphabet::new();
        let original = parse(self.original, &mut alphabet).expect("original parses");
        let data = parse(self.data, &mut alphabet).expect("data expression parses");
        let expected_crx = parse(self.expected_crx, &mut alphabet).expect("crx expectation");
        let expected_idtd = parse(self.expected_idtd, &mut alphabet).expect("idtd expectation");
        BuiltScenario {
            alphabet,
            original,
            data,
            expected_crx,
            expected_idtd,
        }
    }
}

/// Parsed scenario expressions over a shared alphabet.
#[derive(Debug, Clone)]
pub struct BuiltScenario {
    /// Shared alphabet of all four expressions.
    pub alphabet: Alphabet,
    /// Original DTD expression.
    pub original: Regex,
    /// Data-generating expression.
    pub data: Regex,
    /// Published crx result.
    pub expected_crx: Regex,
    /// Published iDTD result.
    pub expected_idtd: Regex,
}

/// Builds `a1 | a2 | … | an` (helper for the wide disjunctions of Table 2).
fn disj(from: usize, to: usize) -> String {
    let mut s = String::new();
    for i in from..=to {
        if i > from {
            s.push_str(" | ");
        }
        let _ = write!(s, "a{i}");
    }
    s
}

/// Table 1: the Protein Sequence Database and Mondial element definitions.
pub fn table1() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "ProteinEntry",
            original: "a1 a2 a3 a4* a5* a6* a7* a8* a9? a10? a11* a12 a13",
            data: "a1 a2 a3 a4+ a5* a6* a7* a8* a9? a10? a11* a12 a13",
            sample_size: 2458,
            xtract_size: Some(843),
            expected_crx: "a1 a2 a3 a4+ a5* a6* a7* a8* a9? a10? a11* a12 a13",
            expected_idtd: "a1 a2 a3 a4+ a5* a6* a7* a8* a9? a10? a11* a12 a13",
            reported_xtract: "an expression of 185 tokens",
        },
        Scenario {
            name: "organism",
            original: "a1 a2? a3 a4? a5*",
            data: "a1 a2? a3 a4? a5*",
            sample_size: 9,
            xtract_size: None,
            expected_crx: "a1 a2? a3 a4? a5*",
            expected_idtd: "a1 a2? a3 a4? a5*",
            reported_xtract: "a1((a2 a3 a4? | a3 a4) a5? | a3 a5*)",
        },
        Scenario {
            name: "reference",
            original: "a1 a2* a3* a4*",
            data: "a1 a2* a3* a4*",
            sample_size: 45,
            xtract_size: None,
            expected_crx: "a1 a2* a3* a4*",
            expected_idtd: "a1 a2* a3* a4*",
            reported_xtract: "a1(a2*(a4* | a3*) | a2 a3* a4 a4 | a3* a4*)",
        },
        Scenario {
            name: "refinfo",
            original: "a1 a2 a3? a4? a5 a6? (a7 | a8)? a9?",
            data: "a1 a2 (a3 | a4)? a5 a6? a7? a9? a8?",
            sample_size: 10,
            xtract_size: None,
            expected_crx: "a1 a2 (a3 | a4)? a5 a6? a7? a9? a8?",
            expected_idtd: "a1 a2 (a3 | a4)? a5 a6? a7? a9? a8?",
            reported_xtract: "a1 a2((a3 a5 a6 a7? | a4 a5) a9? | a5 (a7|a8)? | a4 a5 a8)",
        },
        Scenario {
            name: "authors",
            original: "a1+ | (a2 a3?)",
            data: "a1+ | (a2 a3)",
            sample_size: 54,
            xtract_size: None,
            expected_crx: "a1* a2? a3?",
            expected_idtd: "a1+ | (a2 a3)",
            reported_xtract: "a1* | a2 a3",
        },
        Scenario {
            name: "accinfo",
            original: "a1 a2* a3* a4? a5? a6? a7*",
            data: "a1 a2* a3+ a4? a5? a6? a7*",
            sample_size: 124,
            xtract_size: None,
            expected_crx: "a1 a2* a3+ a4? a5? a6? a7*",
            expected_idtd: "a1 a2* a3+ a4? a5? a6? a7*",
            reported_xtract: "an expression of 97 tokens",
        },
        Scenario {
            name: "genetics",
            original: "a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a11* a12*",
            data: "a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a12*",
            sample_size: 219,
            xtract_size: None,
            expected_crx: "a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a12*",
            expected_idtd: "a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a12*",
            reported_xtract: "an expression of 329 tokens",
        },
        Scenario {
            name: "function",
            original: "a1? a2* a3*",
            data: "a1? a2* a3*",
            sample_size: 26,
            xtract_size: None,
            expected_crx: "a1? a2* a3*",
            expected_idtd: "a1? a2* a3*",
            reported_xtract: "(a1(a2? a2? a3* | a2*(a3 a3)* | a2 a2 a2 a3) | a2(a2 a3* | a3*))",
        },
        Scenario {
            name: "city",
            original: "a1 a2* a3*",
            data: "a1 a2* a3*",
            sample_size: 9,
            xtract_size: None,
            expected_crx: "a1 a2* a3*",
            expected_idtd: "a1 a2* a3*",
            reported_xtract: "a1(a2* a3 a3? | a2(a3* | a2))?",
        },
    ]
}

/// Table 2: sophisticated real-world expressions, generated data.
pub fn table2() -> Vec<Scenario> {
    let d5_18 = disj(5, 18);
    let d4_44 = disj(4, 44);
    let d6_61 = disj(6, 61);
    vec![
        Scenario {
            name: "example1",
            original: "a1+ | (a2? a3+)",
            data: "a1+ | (a2? a3+)",
            sample_size: 48,
            xtract_size: None,
            expected_crx: "a1* a2? a3*",
            expected_idtd: "a1+ | (a2? a3+)",
            reported_xtract: "a1* | (a2? a3*)",
        },
        Scenario {
            name: "example2",
            original: leak(format!("(a1 a2? a3?)? a4? ({d5_18})*")),
            data: leak(format!("(a1 a2? a3?)? a4? ({d5_18})*")),
            sample_size: 2210,
            xtract_size: Some(300),
            expected_crx: leak(format!("a1? a2? a3? a4? ({d5_18})*")),
            expected_idtd: leak(format!("(a1 a2? a3?)? a4? ({d5_18})*")),
            reported_xtract: "an expression of 252 tokens",
        },
        Scenario {
            name: "example3",
            original: leak(format!("a1? (a2 a3?)? ({d4_44})* a45+")),
            data: leak(format!("a1? (a2 a3?)? ({d4_44})* a45+")),
            sample_size: 5741,
            xtract_size: Some(400),
            expected_crx: leak(format!("a1? a2? a3? ({d4_44})* a45+")),
            expected_idtd: leak(format!("a1? (a2 a3?)? ({d4_44})* a45+")),
            reported_xtract: "an expression of 142 tokens",
        },
        Scenario {
            name: "example4",
            original: leak(format!("a1? a2 a3? a4? (a5+ | (({d6_61})+ a5*))")),
            data: leak(format!("a1? a2 a3? a4? (a5+ | (({d6_61})+ a5*))")),
            sample_size: 10000,
            xtract_size: Some(500),
            expected_crx: leak(format!("a1? a2 a3? a4? ({d6_61})* a5*")),
            expected_idtd: leak(format!("a1? a2 a3? a4? ({d6_61})* a5*")),
            reported_xtract: "an expression of 185 tokens",
        },
        Scenario {
            name: "example5",
            original: "a1 (a2 | a3)* (a4 (a2 | a3 | a5)*)*",
            data: "a1 (a2 | a3)* (a4 (a2 | a3 | a5)*)*",
            sample_size: 1281,
            xtract_size: Some(500),
            expected_crx: "a1 (a2 | a3 | a4 | a5)*",
            expected_idtd: "a1 ((a2 | a3 | a4)+ a5*)*",
            reported_xtract: "an expression of 85 tokens",
        },
    ]
}

/// Figure 4: the three generalization sweeps. Returns (scenario, maximum
/// subsample size plotted).
pub fn figure4() -> Vec<(Scenario, usize)> {
    let t2 = table2();
    let example2 = t2[1].clone();
    let example4 = t2[3].clone();
    let ddagger = Scenario {
        name: "expression (\u{2021})",
        original: leak(format!("(a1 ({})+ (a13 | a14))+", disj(2, 12))),
        data: leak(format!("(a1 ({})+ (a13 | a14))+", disj(2, 12))),
        sample_size: 900,
        xtract_size: None,
        expected_crx: leak(format!("(a1 | a13 | a14 | {})+", disj(2, 12))),
        expected_idtd: leak(format!("(a1 ({})+ (a13 | a14))+", disj(2, 12))),
        reported_xtract: "n/a",
    };
    vec![(example2, 2000), (example4, 6000), (ddagger, 900)]
}

/// Leaks a formatted string into a `&'static str` (scenario definitions are
/// process-lifetime constants; the handful of leaks here is intentional).
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_automata::dfa::regex_subset;
    use dtdinfer_regex::classify::{is_chare, is_sore};

    #[test]
    fn all_scenarios_parse() {
        for s in table1().iter().chain(table2().iter()) {
            let b = s.build();
            assert!(b.original.symbol_count() >= 1, "{}", s.name);
            assert!(
                is_chare(&b.expected_crx),
                "{} crx result must be a CHARE",
                s.name
            );
            assert!(
                is_sore(&b.expected_idtd),
                "{} idtd result must be a SORE",
                s.name
            );
        }
        for (s, _) in figure4() {
            let _ = s.build();
        }
    }

    /// The published crx output always over-approximates the data
    /// expression (Theorem 3), and the published iDTD output too
    /// (Theorem 2).
    #[test]
    fn expectations_are_supersets_of_data() {
        for s in table1().iter().chain(table2().iter()) {
            let b = s.build();
            assert!(
                regex_subset(&b.data, &b.expected_crx),
                "{}: data ⊄ crx expectation",
                s.name
            );
            assert!(
                regex_subset(&b.data, &b.expected_idtd),
                "{}: data ⊄ idtd expectation",
                s.name
            );
        }
    }

    /// Table 1 stricter-data rows: data ⊆ original (the §1.1 claim that
    /// the corpus was stricter than the published DTD) — except `refinfo`
    /// and `authors`, where the paper's sample had orderings the loose
    /// original also permits.
    #[test]
    fn data_within_original_where_applicable() {
        for s in table1() {
            if matches!(s.name, "refinfo") {
                continue; // a9/a8 order differs from the (a7|a8)? a9? shape
            }
            let b = s.build();
            assert!(
                regex_subset(&b.data, &b.original),
                "{}: data not within original DTD",
                s.name
            );
        }
    }

    #[test]
    fn example3_soa_size_matches_paper() {
        // "the SOA corresponding to example3 already contains 1897 edges".
        // Our count of 1896 differs by exactly one (the paper presumably
        // counts one extra bookkeeping edge); the scale matches.
        let s = &table2()[2];
        let b = s.build();
        let soa = dtdinfer_automata::glushkov::soa_of_sore(&b.data).unwrap();
        assert_eq!(soa.num_edges(), 1896);
    }

    #[test]
    fn example5_is_not_a_sore() {
        let b = table2()[4].build();
        assert!(!is_sore(&b.original));
    }

    #[test]
    fn example4_is_not_a_sore() {
        let b = table2()[3].build();
        assert!(!is_sore(&b.original));
    }

    #[test]
    fn table1_non_chare_row_is_authors_only() {
        // "only the regular expression for authors is not a CHARE"
        for s in table1() {
            let b = s.build();
            assert_eq!(is_chare(&b.original), s.name != "authors", "{}", s.name);
        }
    }
}
