//! Workload generation and the paper's experiment scenarios.
//!
//! The paper evaluates on two real corpora (Protein Sequence Database,
//! Mondial), on generated data for sophisticated real-world expressions
//! (ToXgene), and on subsampling sweeps. None of those artifacts are
//! redistributable, so this crate regenerates equivalent workloads:
//!
//! * [`generator`] — coverage-guaranteed sampling: every base sample is
//!   *representative* (§4: contains every 2-gram of the target), matching
//!   the paper's "taking care that all relevant examples were present";
//! * [`subsample`] — reservoir subsampling with the all-symbols-present
//!   guarantee used in the §8.2 generalization experiment;
//! * [`scenarios`] — the fixed definitions of every Table 1 row, Table 2
//!   row and Figure 4 series (expressions, sample sizes, published
//!   outputs);
//! * [`critical`] — the critical-size search of §8.2;
//! * [`noise_gen`] — the §9 XHTML-paragraph noise workload.

#![warn(missing_docs)]

pub mod critical;
pub mod generator;
pub mod noise_gen;
pub mod scenarios;
pub mod subsample;

pub use generator::generate_sample;
pub use scenarios::{figure4, table1, table2, Scenario};
pub use subsample::reservoir_subsample;
