//! The §8.2 generalization experiment: success fraction vs sample size and
//! critical-size search.
//!
//! Protocol (quoted from the paper): generate a representative sample for a
//! target expression; compute the per-learner targets `r_crx` and `r_iDTD`
//! from the full sample; then, for each subsample size, draw 200 reservoir
//! subsamples (all symbols guaranteed present) and count how often the
//! learner recovers its target. The *critical size* is the smallest size at
//! which every tested subsample succeeds.

use crate::subsample::subsample_with_all_symbols;
use dtdinfer_automata::soa::Soa;
use dtdinfer_core::crx::crx;
use dtdinfer_core::idtd::{idtd_with, IdtdConfig};
use dtdinfer_core::rewrite::rewrite_soa;
use dtdinfer_regex::alphabet::{Sym, Word};
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::normalize::equiv_commutative;

/// The learner under test in a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Learner {
    /// CRX (diamonds/dotted in Figure 4).
    Crx,
    /// iDTD with the paper's parameters — k = 2, pair repairs
    /// (squares/dashed).
    Idtd,
    /// Bare rewrite without repair rules (circles/solid).
    Rewrite,
    /// This implementation's unrestricted iDTD (growing k + fallback) — an
    /// ablation series beyond the paper.
    IdtdUnrestricted,
}

impl Learner {
    /// The three Figure 4 series.
    pub const ALL: [Learner; 3] = [Learner::Crx, Learner::Idtd, Learner::Rewrite];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Learner::Crx => "crx",
            Learner::Idtd => "idtd",
            Learner::Rewrite => "rewrite",
            Learner::IdtdUnrestricted => "idtd-unrestricted",
        }
    }

    /// Runs the learner on a sample.
    pub fn infer(self, words: &[Word]) -> Option<Regex> {
        match self {
            Learner::Crx => crx(words).into_regex(),
            Learner::Idtd => {
                idtd_with(&Soa::learn(words), IdtdConfig::paper_faithful()).into_regex()
            }
            Learner::IdtdUnrestricted => {
                idtd_with(&Soa::learn(words), IdtdConfig::default()).into_regex()
            }
            Learner::Rewrite => rewrite_soa(&Soa::learn(words)),
        }
    }

    /// The learner's target on the full (representative) sample. Following
    /// the paper's §8.2 protocol, only `r_crx` and `r_iDTD` exist as
    /// targets; the rewrite series measures how often bare rewrite recovers
    /// `r_iDTD` ("iDTD is able to infer r_iDTD in cases where rewrite alone
    /// fails").
    pub fn target(self, base: &[Word]) -> Option<Regex> {
        match self {
            Learner::Rewrite => Learner::Idtd.infer(base),
            other => other.infer(base),
        }
    }
}

/// Fraction of `trials` subsamples of size `k` from which `learner`
/// recovers `target` (syntactically, up to commutativity of union).
pub fn success_fraction(
    learner: Learner,
    base: &[Word],
    target: &Regex,
    required: &[Sym],
    k: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut successes = 0usize;
    for t in 0..trials {
        let sub = subsample_with_all_symbols(
            base,
            k,
            required,
            seed ^ (t as u64).wrapping_mul(0x9e37_79b9),
        );
        match learner.infer(&sub) {
            Some(r) if equiv_commutative(&r, target) => successes += 1,
            _ => {}
        }
    }
    successes as f64 / trials as f64
}

/// One point of a Figure 4 series.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Subsample size.
    pub size: usize,
    /// Fraction of trials recovering the target.
    pub fraction: f64,
}

/// Sweeps subsample sizes for one learner, producing a Figure 4 series.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    learner: Learner,
    base: &[Word],
    target: &Regex,
    required: &[Sym],
    sizes: &[usize],
    trials: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&size| SweepPoint {
            size,
            fraction: success_fraction(learner, base, target, required, size, trials, seed),
        })
        .collect()
}

/// The critical size: smallest tested size with 100% success; `None` if
/// even the largest size fails somewhere.
pub fn critical_size(points: &[SweepPoint]) -> Option<usize> {
    // The fraction is not necessarily monotone sample-to-sample; take the
    // first size from which every larger tested size also succeeds.
    let mut candidate = None;
    for p in points {
        if p.fraction >= 1.0 {
            if candidate.is_none() {
                candidate = Some(p.size);
            }
        } else {
            candidate = None;
        }
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_sample;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::parser::parse;

    #[test]
    fn crx_needs_fewer_strings_than_idtd_on_ddagger() {
        // Figure 4 bottom plot, expression (‡): crx's own target collapses
        // to the coarse (a1|…|a14)+, reachable from O(n) pairs, while
        // iDTD's target is the exact expression whose SOA needs far more
        // of the n² edges, and bare rewrite needs all of them.
        let mut al = Alphabet::new();
        let target_src =
            "(a1 (a2 | a3 | a4 | a5 | a6 | a7 | a8 | a9 | a10 | a11 | a12)+ (a13 | a14))+";
        let r = parse(target_src, &mut al).unwrap();
        let base = generate_sample(&r, 400, 11);
        let required: Vec<Sym> = al.symbols().collect();
        let sizes = [15, 30, 60, 120, 240, 400];
        let trials = 12;
        let mut crit = std::collections::HashMap::new();
        for learner in Learner::ALL {
            let target = learner.target(&base).expect("target");
            let pts = sweep(learner, &base, &target, &required, &sizes, trials, 5);
            crit.insert(learner.name(), critical_size(&pts));
        }
        let c = crit["crx"].expect("crx converges");
        let i = crit["idtd"].expect("idtd converges");
        assert!(c <= i, "crx critical {c} should be ≤ idtd critical {i}");
        // rewrite converges last (or not at all within the tested sizes).
        if let Some(w) = crit["rewrite"] {
            assert!(i <= w, "idtd critical {i} should be ≤ rewrite critical {w}");
        }
    }

    #[test]
    fn rewrite_needs_at_least_as_much_as_idtd() {
        let mut al = Alphabet::new();
        let r = parse("(a1 | a2 | a3 | a4)+", &mut al).unwrap();
        let base = generate_sample(&r, 200, 3);
        let required: Vec<Sym> = al.symbols().collect();
        let sizes = [5, 10, 20, 40, 80, 200];
        let idtd_target = Learner::Idtd.target(&base).unwrap();
        let rewrite_target = Learner::Rewrite.target(&base).unwrap();
        let i = sweep(Learner::Idtd, &base, &idtd_target, &required, &sizes, 20, 7);
        let w = sweep(
            Learner::Rewrite,
            &base,
            &rewrite_target,
            &required,
            &sizes,
            20,
            7,
        );
        // At every size, iDTD succeeds at least as often (repair rules
        // recover from missing edges that stall bare rewrite).
        for (pi, pw) in i.iter().zip(&w) {
            assert!(
                pi.fraction >= pw.fraction - 1e-9,
                "size {}: idtd {} < rewrite {}",
                pi.size,
                pi.fraction,
                pw.fraction
            );
        }
    }

    #[test]
    fn critical_size_semantics() {
        let pts = [
            SweepPoint {
                size: 10,
                fraction: 0.4,
            },
            SweepPoint {
                size: 20,
                fraction: 1.0,
            },
            SweepPoint {
                size: 30,
                fraction: 0.9,
            },
            SweepPoint {
                size: 40,
                fraction: 1.0,
            },
            SweepPoint {
                size: 50,
                fraction: 1.0,
            },
        ];
        assert_eq!(critical_size(&pts), Some(40));
        let none = [SweepPoint {
            size: 10,
            fraction: 0.9,
        }];
        assert_eq!(critical_size(&none), None);
    }
}
