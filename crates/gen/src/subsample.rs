//! Reservoir subsampling with the all-symbols-present guarantee (§8.2).
//!
//! The generalization experiment draws 200 subsamples of each size from a
//! representative base sample, "ensur\[ing\] that the subsamples contain all
//! alphabet symbols of the target expressions for fair comparisons".

use dtdinfer_regex::alphabet::{Sym, Word};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Classic reservoir sampling of `k` words out of `base`.
pub fn reservoir_subsample(base: &[Word], k: usize, rng: &mut StdRng) -> Vec<Word> {
    let mut reservoir: Vec<Word> = base.iter().take(k).cloned().collect();
    for (i, w) in base.iter().enumerate().skip(k) {
        let j = rng.gen_range(0..=i);
        if j < k {
            reservoir[j] = w.clone();
        }
    }
    reservoir
}

/// Reservoir subsampling retried a few times until every symbol of
/// `required` appears; if the retries fail, donor words from the base
/// sample are *pinned* into the subsample, one per missing symbol.
///
/// The pinning loop terminates in at most `|required|` rounds because the
/// pinned prefix (and hence its symbol set) only grows. In the pathological
/// case where `k` words cannot exhibit all required symbols, the result may
/// exceed `k` by the number of pinned donors.
pub fn subsample_with_all_symbols(
    base: &[Word],
    k: usize,
    required: &[Sym],
    seed: u64,
) -> Vec<Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    let missing_of = |ws: &[Word]| -> Vec<Sym> {
        let present: BTreeSet<Sym> = ws.iter().flat_map(|w| w.iter().copied()).collect();
        required
            .iter()
            .copied()
            .filter(|s| !present.contains(s))
            .collect()
    };
    for _ in 0..20 {
        let sub = reservoir_subsample(base, k, &mut rng);
        if missing_of(&sub).is_empty() {
            return sub;
        }
    }
    // Pin donors: keep a growing prefix of donor words, refill the rest
    // from the reservoir.
    let reservoir = reservoir_subsample(base, k, &mut rng);
    let mut pinned: Vec<Word> = Vec::new();
    loop {
        let tail_len = k.saturating_sub(pinned.len());
        let mut sub = pinned.clone();
        sub.extend(reservoir.iter().take(tail_len).cloned());
        let missing = missing_of(&sub);
        if missing.is_empty() {
            return sub;
        }
        for m in missing {
            // One donor may cover several missing symbols; skip if an
            // earlier donor this round already pinned it.
            if pinned.iter().any(|w| w.contains(&m)) {
                continue;
            }
            // Choose the donor uniformly among candidates — a fixed donor
            // would bias small subsamples toward the (information-dense)
            // covering words at the front of generated base samples.
            let candidates: Vec<&Word> = base.iter().filter(|w| w.contains(&m)).collect();
            assert!(
                !candidates.is_empty(),
                "base sample covers all required symbols"
            );
            pinned.push(candidates[rng.gen_range(0..candidates.len())].clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::alphabet::Alphabet;

    fn base(al: &mut Alphabet) -> Vec<Word> {
        ["ab", "bc", "cd", "da", "ac", "bd", "aa", "dd"]
            .iter()
            .map(|w| al.word_from_chars(w))
            .collect()
    }

    #[test]
    fn subsample_size() {
        let mut al = Alphabet::new();
        let b = base(&mut al);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(reservoir_subsample(&b, 3, &mut rng).len(), 3);
        assert_eq!(reservoir_subsample(&b, 8, &mut rng).len(), 8);
    }

    #[test]
    fn subsample_draws_from_base() {
        let mut al = Alphabet::new();
        let b = base(&mut al);
        let mut rng = StdRng::seed_from_u64(1);
        for w in reservoir_subsample(&b, 5, &mut rng) {
            assert!(b.contains(&w));
        }
    }

    #[test]
    fn all_symbols_guaranteed() {
        let mut al = Alphabet::new();
        let b = base(&mut al);
        let required: Vec<Sym> = al.symbols().collect();
        for seed in 0..20 {
            let sub = subsample_with_all_symbols(&b, 4, &required, seed);
            let present: BTreeSet<Sym> = sub.iter().flat_map(|w| w.iter().copied()).collect();
            for s in &required {
                assert!(present.contains(s), "seed {seed} missing symbol");
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let mut al = Alphabet::new();
        let b = base(&mut al);
        let required: Vec<Sym> = al.symbols().collect();
        assert_eq!(
            subsample_with_all_symbols(&b, 4, &required, 9),
            subsample_with_all_symbols(&b, 4, &required, 9)
        );
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Each base word should land in the reservoir with probability k/n.
        let mut al = Alphabet::new();
        let b = base(&mut al);
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = vec![0usize; b.len()];
        let trials = 4000;
        for _ in 0..trials {
            for w in reservoir_subsample(&b, 2, &mut rng) {
                let i = b.iter().position(|x| *x == w).unwrap();
                hits[i] += 1;
            }
        }
        let expected = trials * 2 / b.len();
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (h as f64 - expected as f64).abs() < expected as f64 * 0.25,
                "word {i}: {h} vs expected {expected}"
            );
        }
    }
}
