//! Coverage-guaranteed sample generation (the ToXgene substitute).
//!
//! A sample is *representative* of a SORE when 2T-INF recovers its SOA
//! exactly, i.e. when it exhibits every first symbol, last symbol and
//! 2-gram (§4). [`generate_sample`] seeds the sample with the covering
//! words of the target and fills the rest with random draws, exactly the
//! protocol the paper describes for Table 2 ("taking care that all
//! relevant examples were present to ensure the target expression could
//! be learned").

use dtdinfer_regex::alphabet::Word;
use dtdinfer_regex::ast::Regex;
use dtdinfer_regex::sample::{covering_words, sample_words, SampleConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates `n` words from `L(r)`, guaranteeing representativeness when
/// `n` is at least the number of covering words.
pub fn generate_sample(r: &Regex, n: usize, seed: u64) -> Vec<Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words = covering_words(r);
    words.truncate(n);
    if words.len() < n {
        let cfg = SampleConfig::default();
        words.extend(sample_words(r, &cfg, &mut rng, n - words.len()));
    }
    words
}

/// Random-only sampling (no coverage guarantee) — used when modelling the
/// sparse-data scenario.
pub fn generate_random_sample(r: &Regex, n: usize, seed: u64) -> Vec<Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_words(r, &SampleConfig::default(), &mut rng, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_automata::glushkov::soa_of_sore;
    use dtdinfer_automata::nfa::regex_matches;
    use dtdinfer_automata::soa::Soa;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::parser::parse;

    #[test]
    fn samples_are_members() {
        let mut al = Alphabet::new();
        let r = parse("((b? (a|c))+ d)+ e", &mut al).unwrap();
        for w in generate_sample(&r, 100, 1) {
            assert!(regex_matches(&r, &w));
        }
    }

    #[test]
    fn large_sample_is_representative() {
        let mut al = Alphabet::new();
        let r = parse("a? (b | c)+ d*", &mut al).unwrap();
        let words = generate_sample(&r, 60, 7);
        let learned = Soa::learn(&words);
        let glushkov = soa_of_sore(&r).unwrap();
        assert_eq!(learned, glushkov);
    }

    #[test]
    fn deterministic_by_seed() {
        let mut al = Alphabet::new();
        let r = parse("(a | b)+ c", &mut al).unwrap();
        assert_eq!(generate_sample(&r, 50, 3), generate_sample(&r, 50, 3));
        assert_ne!(generate_sample(&r, 50, 3), generate_sample(&r, 50, 4));
    }

    #[test]
    fn exact_size() {
        let mut al = Alphabet::new();
        let r = parse("(a | b)+ c", &mut al).unwrap();
        assert_eq!(generate_sample(&r, 17, 1).len(), 17);
        assert_eq!(generate_random_sample(&r, 17, 1).len(), 17);
    }
}
