//! The §9 noise workload: XHTML-paragraph-like data.
//!
//! The paper examined >30000 occurrences of XHTML `<P>` elements, whose
//! content model is a 41-symbol repeated disjunction `(a1+…+a41)*`, and
//! found about a dozen disallowed intruder elements (`table`, `h1`, …)
//! each appearing in around 10 strings. This generator reproduces those
//! statistics synthetically.

use dtdinfer_regex::alphabet::{Alphabet, Sym, Word};
use dtdinfer_regex::ast::Regex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generated noisy corpus plus ground truth.
#[derive(Debug, Clone)]
pub struct NoisyCorpus {
    /// The shared alphabet (clean symbols first, then intruders).
    pub alphabet: Alphabet,
    /// Clean symbols (the 41 legal children).
    pub clean: Vec<Sym>,
    /// Intruder symbols.
    pub intruders: Vec<Sym>,
    /// The generated words.
    pub words: Vec<Word>,
    /// The clean target expression `(a1|…|an)*`.
    pub target: Regex,
}

/// Parameters for the noisy-paragraph generator.
#[derive(Debug, Clone, Copy)]
pub struct NoiseParams {
    /// Number of legal child elements (41 in XHTML's `<P>`).
    pub clean_symbols: usize,
    /// Number of intruder element names (~12 in the study).
    pub num_intruders: usize,
    /// Total words (>30000 occurrences in the study).
    pub num_words: usize,
    /// Words containing each intruder (~10 in the study).
    pub intruder_words_each: usize,
    /// Mean clean word length.
    pub mean_len: usize,
}

impl Default for NoiseParams {
    fn default() -> Self {
        Self {
            clean_symbols: 41,
            num_intruders: 12,
            num_words: 30000,
            intruder_words_each: 10,
            mean_len: 6,
        }
    }
}

/// Generates the corpus. Every clean 2-gram that `(a1|…|an)*` requires is
/// planted first so the clean portion alone is representative; intruders
/// are then spliced into a few random words.
pub fn noisy_paragraphs(params: NoiseParams, seed: u64) -> NoisyCorpus {
    let mut alphabet = Alphabet::new();
    let clean: Vec<Sym> = (1..=params.clean_symbols)
        .map(|i| alphabet.intern(&format!("a{i}")))
        .collect();
    let intruders: Vec<Sym> = (1..=params.num_intruders)
        .map(|i| alphabet.intern(&format!("z{i}")))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words: Vec<Word> = Vec::with_capacity(params.num_words);

    // Representative seed words: all n² pairs, chunked.
    let mut pair_words: Word = Vec::new();
    for &x in &clean {
        for &y in &clean {
            pair_words.extend([x, y]);
            if pair_words.len() >= params.mean_len {
                words.push(std::mem::take(&mut pair_words));
            }
        }
    }
    if !pair_words.is_empty() {
        words.push(pair_words);
    }
    words.push(Vec::new()); // ε — the star's zero case
    while words.len() < params.num_words {
        let len = rng.gen_range(0..=params.mean_len * 2);
        let w: Word = (0..len)
            .map(|_| clean[rng.gen_range(0..clean.len())])
            .collect();
        words.push(w);
    }
    // Splice intruders.
    for &z in &intruders {
        for _ in 0..params.intruder_words_each {
            let i = rng.gen_range(0..words.len());
            let w = &mut words[i];
            let pos = if w.is_empty() {
                0
            } else {
                rng.gen_range(0..=w.len())
            };
            w.insert(pos, z);
        }
    }
    let target = Regex::star(Regex::union(
        clean.iter().copied().map(Regex::sym).collect(),
    ));
    NoisyCorpus {
        alphabet,
        clean,
        intruders,
        words,
        target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_core::noise::SupportSoa;
    use dtdinfer_regex::normalize::equiv_commutative;

    fn small() -> NoisyCorpus {
        noisy_paragraphs(
            NoiseParams {
                clean_symbols: 8,
                num_intruders: 3,
                num_words: 800,
                intruder_words_each: 4,
                mean_len: 5,
            },
            42,
        )
    }

    #[test]
    fn statistics_match_parameters() {
        let c = small();
        assert_eq!(c.clean.len(), 8);
        assert_eq!(c.intruders.len(), 3);
        assert_eq!(c.words.len(), 800);
        for &z in &c.intruders {
            let hits = c.words.iter().filter(|w| w.contains(&z)).count();
            assert!((1..=4).contains(&hits), "intruder appears in {hits} words");
        }
    }

    #[test]
    fn clean_portion_is_representative() {
        let c = small();
        let clean_words: Vec<Word> = c
            .words
            .iter()
            .filter(|w| w.iter().all(|s| c.clean.contains(s)))
            .cloned()
            .collect();
        let soa = dtdinfer_automata::soa::Soa::learn(&clean_words);
        let target_soa = dtdinfer_automata::glushkov::soa_of_sore(&c.target).unwrap();
        assert_eq!(soa, target_soa);
    }

    #[test]
    fn denoising_recovers_target() {
        let c = small();
        let s = SupportSoa::learn(&c.words);
        let r = s.infer_denoised(5).into_regex().unwrap();
        assert!(
            equiv_commutative(&r, &c.target),
            "got {}",
            dtdinfer_regex::display::render(&r, &c.alphabet)
        );
    }

    #[test]
    fn without_denoising_intruders_leak() {
        let c = small();
        let s = SupportSoa::learn(&c.words);
        let r = s.infer_noise_aware(0).into_regex().unwrap();
        let syms = r.symbols();
        assert!(
            c.intruders.iter().any(|z| syms.contains(z)),
            "intruders unexpectedly absent"
        );
    }
}
