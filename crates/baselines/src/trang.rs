//! A Trang-like schema inferrer (§8.1).
//!
//! The paper reverse-engineered James Clark's Trang: "it uses 2T-INF to
//! construct an automaton, eliminates cycles by merging all nodes in the
//! same strongly connected component, and then transforms the obtained DAG
//! into a regular expression", noting that its outputs coincide with CRX on
//! all their data but one (order-dependent) case, and that no target class
//! is specified for which it is complete.
//!
//! We implement exactly that machinery: 2T-INF → SOA → SCC condensation
//! (cyclic components become repeated disjunctions) → same-neighborhood
//! merging → topological chain with bypass-derived optionality. Being
//! deterministic, it produces the CRX-like branch of the order-dependent
//! outputs; the order-dependence itself is a bug of the original that we do
//! not reproduce.

use dtdinfer_automata::soa::Soa;
use dtdinfer_core::model::InferredModel;
use dtdinfer_regex::alphabet::{Sym, Word};
use dtdinfer_regex::ast::Regex;
use std::collections::{BTreeMap, BTreeSet};

/// Runs the Trang-like inference on a sample of words.
pub fn trang<'a, I>(words: I) -> InferredModel
where
    I: IntoIterator<Item = &'a Word>,
{
    let _span = dtdinfer_obs::span("baselines.trang");
    let words: Vec<&Word> = words.into_iter().collect();
    dtdinfer_obs::count("baselines.trang.runs", 1);
    dtdinfer_obs::count("baselines.trang.words", words.len() as u64);
    if words.is_empty() {
        return InferredModel::Empty;
    }
    let soa = Soa::learn(words.iter().copied());
    if soa.states.is_empty() {
        return InferredModel::EpsilonOnly;
    }
    InferredModel::Regex(from_soa(&soa))
}

/// The DAG node after SCC condensation.
#[derive(Debug, Clone)]
struct ClassNode {
    syms: Vec<Sym>,
    /// Cyclic (size > 1 SCC, or a self-loop): rendered with `+`.
    cyclic: bool,
}

/// Trang's automaton-to-RE translation.
pub fn from_soa(soa: &Soa) -> Regex {
    let syms: Vec<Sym> = soa.states.iter().copied().collect();
    let index: BTreeMap<Sym, usize> = syms.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let n = syms.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &soa.edges {
        adj[index[&a]].push(index[&b]);
    }

    // SCC condensation.
    let comps = sccs(&adj);
    let mut class_of = vec![0usize; n];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            class_of[v] = ci;
        }
    }
    let mut classes: Vec<ClassNode> = comps
        .iter()
        .map(|comp| {
            let mut members: Vec<Sym> = comp.iter().map(|&v| syms[v]).collect();
            members.sort_unstable();
            let cyclic = comp.len() > 1 || comp.iter().any(|&v| adj[v].contains(&v));
            ClassNode {
                syms: members,
                cyclic,
            }
        })
        .collect();
    let k = classes.len();
    let mut dag_succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); k];
    for &(a, b) in &soa.edges {
        let (ca, cb) = (class_of[index[&a]], class_of[index[&b]]);
        if ca != cb {
            dag_succ[ca].insert(cb);
        }
    }
    let initial: BTreeSet<usize> = soa.initial.iter().map(|s| class_of[index[s]]).collect();
    let finals: BTreeSet<usize> = soa.finals.iter().map(|s| class_of[index[s]]).collect();

    // Merge DAG nodes with identical neighborhoods (and identical
    // initial/final status) into one choice node — the step that makes
    // Trang's outputs line up with CRX's factors.
    let mut alive = vec![true; k];
    let mut dag_pred: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); k];
    for (u, succs) in dag_succ.iter().enumerate() {
        for &v in succs {
            dag_pred[v].insert(u);
        }
    }
    let mut initial = initial;
    let mut finals = finals;
    loop {
        // Group by neighborhood and cyclicity only — like CRX's singleton
        // merge, acceptance is handled by the bypass analysis below, not by
        // the grouping.
        let mut groups: BTreeMap<(Vec<usize>, Vec<usize>, bool), Vec<usize>> = BTreeMap::new();
        for ci in 0..k {
            if alive[ci] && classes[ci].syms.len() == 1 {
                groups
                    .entry((
                        dag_pred[ci].iter().copied().collect(),
                        dag_succ[ci].iter().copied().collect(),
                        classes[ci].cyclic,
                    ))
                    .or_default()
                    .push(ci);
            }
        }
        let Some(group) = groups.into_values().find(|g| g.len() >= 2) else {
            break;
        };
        let target = group[0];
        for &ci in &group[1..] {
            let members = classes[ci].syms.clone();
            classes[target].syms.extend(members);
            classes[target].syms.sort_unstable();
            alive[ci] = false;
            let preds: Vec<usize> = dag_pred[ci].iter().copied().collect();
            for p in preds {
                dag_succ[p].remove(&ci);
                dag_succ[p].insert(target);
                dag_pred[target].insert(p);
            }
            let succs: Vec<usize> = dag_succ[ci].iter().copied().collect();
            for s in succs {
                dag_pred[s].remove(&ci);
                dag_pred[s].insert(target);
                dag_succ[target].insert(s);
            }
            dag_pred[ci].clear();
            dag_succ[ci].clear();
            if initial.remove(&ci) {
                initial.insert(target);
            }
            if finals.remove(&ci) {
                finals.insert(target);
            }
        }
    }

    // Topological order of surviving classes.
    let mut indeg: Vec<usize> = (0..k).map(|ci| dag_pred[ci].len()).collect();
    let mut ready: BTreeSet<usize> = (0..k).filter(|&ci| alive[ci] && indeg[ci] == 0).collect();
    let mut order = Vec::new();
    while let Some(&ci) = ready.iter().next() {
        ready.remove(&ci);
        order.push(ci);
        let succs: Vec<usize> = dag_succ[ci].iter().copied().collect();
        for s in succs {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.insert(s);
            }
        }
    }

    // Optionality: a class is optional iff some accepted path bypasses it —
    // i.e. deleting the class still leaves an initial→final path (or ε).
    let factors: Vec<Regex> = order
        .iter()
        .map(|&ci| {
            let class = &classes[ci];
            let base = if class.syms.len() == 1 {
                Regex::sym(class.syms[0])
            } else {
                Regex::union(class.syms.iter().copied().map(Regex::sym).collect())
            };
            let repeated = if class.cyclic {
                Regex::plus(base)
            } else {
                base
            };
            let bypass =
                soa.accepts_empty || path_avoiding(&dag_succ, &alive, &initial, &finals, ci);
            if bypass {
                Regex::optional(repeated)
            } else {
                repeated
            }
        })
        .collect();
    dtdinfer_regex::normalize::star_form(&Regex::concat(factors))
}

/// Whether an initial→final DAG path avoiding `skip` exists.
fn path_avoiding(
    dag_succ: &[BTreeSet<usize>],
    alive: &[bool],
    initial: &BTreeSet<usize>,
    finals: &BTreeSet<usize>,
    skip: usize,
) -> bool {
    let mut stack: Vec<usize> = initial
        .iter()
        .copied()
        .filter(|&c| alive[c] && c != skip)
        .collect();
    let mut seen: BTreeSet<usize> = stack.iter().copied().collect();
    while let Some(c) = stack.pop() {
        if finals.contains(&c) {
            return true;
        }
        for &s in &dag_succ[c] {
            if alive[s] && s != skip && seen.insert(s) {
                stack.push(s);
            }
        }
    }
    false
}

fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    // Iterative Tarjan.
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut comps = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call = vec![(root, 0usize)];
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut edge)) = call.last_mut() {
            if *edge < adj[v].len() {
                let w = adj[v][*edge];
                *edge += 1;
                if index[w] == usize::MAX {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::display::render;

    fn run(words: &[&str]) -> (InferredModel, Alphabet) {
        let mut al = Alphabet::new();
        let ws: Vec<Word> = words.iter().map(|w| al.word_from_chars(w)).collect();
        (trang(&ws), al)
    }

    #[test]
    fn covers_training_words() {
        let samples: &[&[&str]] = &[
            &["abc", "ac"],
            &["aab", "b"],
            &["ab", "ba", "aba"],
            &["abd", "bcdee", "cade"],
        ];
        for words in samples {
            let mut al = Alphabet::new();
            let ws: Vec<Word> = words.iter().map(|w| al.word_from_chars(w)).collect();
            let model = trang(&ws);
            for w in &ws {
                assert!(model.matches(w), "{words:?} lost {w:?}");
            }
        }
    }

    #[test]
    fn chain_with_optional() {
        let (m, al) = run(&["abc", "ac"]);
        let r = m.into_regex().unwrap();
        assert_eq!(render(&r, &al), "a b? c");
    }

    #[test]
    fn self_loop_becomes_star_when_bypassed() {
        let (m, al) = run(&["aab", "b"]);
        let r = m.into_regex().unwrap();
        assert_eq!(render(&r, &al), "a* b");
    }

    #[test]
    fn scc_becomes_repeated_disjunction() {
        // a→b→c→a cycle like CRX's Example 1.
        let (m, al) = run(&["abd", "bcdee", "cade"]);
        let r = m.into_regex().unwrap();
        // Same result as CRX on this sample: (a|b|c)+ d e*.
        assert_eq!(render(&r, &al), "(a | b | c)+ d e*");
    }

    #[test]
    fn matches_crx_on_paper_examples() {
        // §8.1: "In all but one case, Trang produced exactly the same
        // output as crx."
        for words in [
            vec!["abd", "bcdee", "cade"],
            vec!["abccde", "cccad", "bfegg", "bfehi"],
            vec!["ab", "b", "aab"],
        ] {
            let mut al = Alphabet::new();
            let ws: Vec<Word> = words.iter().map(|w| al.word_from_chars(w)).collect();
            let t = trang(&ws).into_regex().unwrap();
            let c = dtdinfer_core::crx::crx(&ws).into_regex().unwrap();
            assert!(
                dtdinfer_automata::dfa::regex_equiv(&t, &c),
                "{words:?}: trang={} crx={}",
                render(&t, &al),
                render(&c, &al)
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        let (m, _) = run(&[]);
        assert_eq!(m, InferredModel::Empty);
        let ws: Vec<Word> = vec![vec![]];
        assert_eq!(trang(&ws), InferredModel::EpsilonOnly);
    }

    #[test]
    fn empty_word_makes_everything_optional() {
        let (m, al) = run(&["ab", ""]);
        let r = m.clone().into_regex().unwrap();
        assert!(m.matches(&vec![]));
        assert!(m.matches(&al.clone().word_from_chars("ab")));
        let _ = render(&r, &al);
    }
}
