//! Baseline DTD-inference systems the paper compares against (§2, §8).
//!
//! * [`mod@xtract`] — a reimplementation of XTRACT (Garofalakis et al., DMKD
//!   2003) following its three published modules: per-string
//!   *generalization* (repeated subparts become Kleene-starred groups),
//!   *factoring* of common subexpressions, and *MDL*-based candidate
//!   selection (the NP-hard subproblem approximated by greedy weighted set
//!   cover, with an explicit work budget modeling the memory crashes the
//!   paper reports on samples beyond ~1000 strings).
//! * [`mod@trang`] — a Trang-like inferrer per the paper's reading of James
//!   Clark's source: 2T-INF, strongly-connected-component merging, then a
//!   DAG-to-RE translation; its outputs track CRX closely (§8.1).

#![warn(missing_docs)]

pub mod trang;
pub mod xtract;

pub use trang::trang;
pub use xtract::{xtract, XtractConfig, XtractError};
