//! XTRACT reimplementation (Garofalakis, Gionis, Rastogi, Seshadri, Shim:
//! "XTRACT: learning document type descriptors from XML document
//! collections", DMKD 7:23–56, 2003), as characterized in §2 of the paper.
//!
//! Pipeline:
//!
//! 1. **Generalization** — every distinct input string yields candidate
//!    REs: the string itself, plus variants where maximal periodic runs
//!    (`ababab`) are replaced by Kleene-starred groups (`(ab)*`).
//! 2. **Factoring** — candidates are factored on common prefixes/suffixes
//!    (logic-optimization style: `ab + ac → a(b + c)`).
//! 3. **MDL** — a subset of candidates covering all strings is chosen to
//!    minimize `L(theory) + L(data | theory)`; the exact problem is
//!    NP-hard (Fernau 2004), so we use greedy weighted set cover like any
//!    practical implementation must. The final DTD is the disjunction of
//!    the chosen candidates, factored once more.
//!
//! The original system could not handle samples beyond ~1000 strings
//! (>1 GB RSS, §8.1); [`XtractConfig::work_budget`] models that resource
//! wall so benchmark harnesses can report "crash" points faithfully.

use dtdinfer_regex::alphabet::{Sym, Word};
use dtdinfer_regex::ast::Regex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct XtractConfig {
    /// Abort (modeling the original's memory crash) once the MDL encoder
    /// has performed this many DP cell evaluations.
    pub work_budget: u64,
    /// Maximum number of distinct strings before aborting outright.
    pub max_distinct_strings: usize,
}

impl Default for XtractConfig {
    fn default() -> Self {
        Self {
            work_budget: 50_000_000,
            max_distinct_strings: 1000,
        }
    }
}

/// Failure modes (the paper reports xtract crashing on large samples).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XtractError {
    /// Too many distinct strings — the original exceeded 1 GB here.
    TooManyStrings {
        /// Number of distinct strings in the sample.
        distinct: usize,
        /// The configured limit.
        limit: usize,
    },
    /// MDL work budget exhausted.
    BudgetExhausted,
    /// Empty input.
    EmptySample,
}

impl fmt::Display for XtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XtractError::TooManyStrings { distinct, limit } => write!(
                f,
                "xtract cannot handle {distinct} distinct strings (limit {limit}): \
                 resource exhaustion"
            ),
            XtractError::BudgetExhausted => write!(f, "xtract MDL work budget exhausted"),
            XtractError::EmptySample => write!(f, "xtract requires a non-empty sample"),
        }
    }
}

impl std::error::Error for XtractError {}

/// Runs the XTRACT pipeline on a sample of words.
pub fn xtract(words: &[Word], cfg: &XtractConfig) -> Result<Regex, XtractError> {
    let _span = dtdinfer_obs::span("baselines.xtract");
    dtdinfer_obs::count("baselines.xtract.runs", 1);
    dtdinfer_obs::count("baselines.xtract.words", words.len() as u64);
    let mut distinct: Vec<&Word> = Vec::new();
    {
        let mut seen = std::collections::BTreeSet::new();
        for w in words {
            if !w.is_empty() && seen.insert(w.clone()) {
                distinct.push(w);
            }
        }
    }
    if distinct.is_empty() {
        return Err(XtractError::EmptySample);
    }
    if distinct.len() > cfg.max_distinct_strings {
        return Err(XtractError::TooManyStrings {
            distinct: distinct.len(),
            limit: cfg.max_distinct_strings,
        });
    }

    // Module 1: generalization.
    let mut candidates: Vec<Regex> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for w in &distinct {
            for cand in generalize(w) {
                if seen.insert(cand.clone()) {
                    candidates.push(cand);
                }
            }
        }
    }

    // Module 2: factoring of the candidate pool (pairwise common
    // prefix/suffix factoring produces additional, more general
    // candidates).
    let factored_pool = factor_union(candidates.clone());
    if let Regex::Union(parts) = &factored_pool {
        for p in parts {
            if !candidates.contains(p) {
                candidates.push(p.clone());
            }
        }
    } else if !candidates.contains(&factored_pool) {
        candidates.push(factored_pool.clone());
    }

    // Module 3: MDL candidate selection via greedy weighted set cover.
    let alphabet_bits = bits_for(alphabet_size(&distinct) + 4);
    let mut encoder = MdlEncoder::new(cfg.work_budget);
    // cost_matrix[c][s] = bits to encode string s with candidate c (None =
    // not derivable). A cheap NFA membership pre-filter avoids running the
    // quadratic MDL dynamic program on the (many) underivable pairs.
    let mut cost: Vec<Vec<Option<f64>>> = Vec::with_capacity(candidates.len());
    for cand in &candidates {
        let nfa = dtdinfer_automata::nfa::Nfa::from_regex(cand);
        let mut row = Vec::with_capacity(distinct.len());
        for w in &distinct {
            if nfa.accepts(w) {
                row.push(encoder.encode(cand, w)?);
            } else {
                row.push(None);
            }
        }
        cost.push(row);
    }

    let theory_cost = |c: &Regex| -> f64 { c.token_count() as f64 * alphabet_bits };
    let mut covered = vec![false; distinct.len()];
    let mut chosen: Vec<usize> = Vec::new();
    while covered.iter().any(|&c| !c) {
        let mut best: Option<(f64, usize)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            if chosen.contains(&ci) {
                continue;
            }
            let mut gain_strings = 0usize;
            let mut data_bits = 0.0f64;
            for (si, row) in cost[ci].iter().enumerate() {
                if !covered[si] {
                    if let Some(bits) = row {
                        gain_strings += 1;
                        data_bits += bits;
                    }
                }
            }
            if gain_strings == 0 {
                continue;
            }
            let ratio = (theory_cost(cand) + data_bits) / gain_strings as f64;
            if best.is_none_or(|(b, _)| ratio < b) {
                best = Some((ratio, ci));
            }
        }
        // Every string always derivable from its own raw candidate, so
        // progress is guaranteed.
        let (_, ci) = best.expect("raw candidates cover everything");
        for (si, row) in cost[ci].iter().enumerate() {
            if row.is_some() {
                covered[si] = true;
            }
        }
        chosen.push(ci);
    }

    let parts: Vec<Regex> = chosen
        .into_iter()
        .map(|ci| candidates[ci].clone())
        .collect();
    Ok(factor_union(parts))
}

fn alphabet_size(words: &[&Word]) -> usize {
    let mut syms = std::collections::BTreeSet::new();
    for w in words {
        syms.extend(w.iter().copied());
    }
    syms.len()
}

fn bits_for(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// Module 1: candidate generation for one string.
///
/// Produces the raw string plus variants in which maximal periodic runs are
/// replaced by `(period)*` groups — one variant preferring the shortest
/// period at each position, one preferring the longest run.
pub fn generalize(w: &Word) -> Vec<Regex> {
    let mut out = vec![word_regex(w)];
    for prefer_long in [false, true] {
        if let Some(cand) = starred_variant(w, prefer_long) {
            if !out.contains(&cand) {
                out.push(cand);
            }
        }
    }
    out
}

fn word_regex(w: &Word) -> Regex {
    Regex::concat(w.iter().copied().map(Regex::sym).collect())
}

/// Greedy left-to-right replacement of periodic runs by starred groups.
fn starred_variant(w: &Word, prefer_long: bool) -> Option<Regex> {
    let mut parts: Vec<Regex> = Vec::new();
    let mut i = 0usize;
    let mut replaced = false;
    while i < w.len() {
        let mut chosen: Option<(usize, usize)> = None; // (period, reps)
        let periods: Vec<usize> = if prefer_long {
            (1..=(w.len() - i) / 2).rev().collect()
        } else {
            (1..=(w.len() - i) / 2).collect()
        };
        for p in periods {
            let reps = run_length(w, i, p);
            if reps >= 2 {
                chosen = Some((p, reps));
                break;
            }
        }
        match chosen {
            Some((p, reps)) => {
                let unit = word_regex(&w[i..i + p].to_vec());
                parts.push(Regex::star(unit));
                replaced = true;
                i += p * reps;
            }
            None => {
                parts.push(Regex::sym(w[i]));
                i += 1;
            }
        }
    }
    replaced.then(|| Regex::concat(parts))
}

/// Number of consecutive repetitions of `w[i..i+p]` starting at `i`.
fn run_length(w: &[Sym], i: usize, p: usize) -> usize {
    let mut reps = 1usize;
    while i + (reps + 1) * p <= w.len() && w[i + reps * p..i + (reps + 1) * p] == w[i..i + p] {
        reps += 1;
    }
    reps
}

/// Module 2: factoring. Combines a set of alternatives into a single RE,
/// factoring common prefixes and then common suffixes recursively.
pub fn factor_union(mut parts: Vec<Regex>) -> Regex {
    parts.sort_by_key(canon_key);
    parts.dedup();
    if parts.len() == 1 {
        return parts.pop().expect("one element");
    }
    if let Some(r) = factor_by(&parts, Direction::Prefix) {
        return r;
    }
    if let Some(r) = factor_by(&parts, Direction::Suffix) {
        return r;
    }
    Regex::union(parts)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Prefix,
    Suffix,
}

/// One factoring pass: groups alternatives sharing their first (or last)
/// element, pulls the shared element out, and recurses on the remainders.
fn factor_by(parts: &[Regex], dir: Direction) -> Option<Regex> {
    let mut groups: BTreeMap<String, Vec<Regex>> = BTreeMap::new();
    for p in parts {
        groups
            .entry(canon_key(&edge_element(p, dir)))
            .or_default()
            .push(p.clone());
    }
    if !groups.values().any(|g| g.len() >= 2) || groups.len() >= parts.len() {
        return None;
    }
    let mut alts: Vec<Regex> = Vec::new();
    for group in groups.into_values() {
        if group.len() == 1 {
            alts.extend(group);
            continue;
        }
        let shared = edge_element(&group[0], dir);
        let mut remainders: Vec<Regex> = Vec::new();
        let mut some_empty = false;
        for g in &group {
            match remainder(g, dir) {
                Some(t) => remainders.push(t),
                None => some_empty = true,
            }
        }
        let factored = if remainders.is_empty() {
            None
        } else {
            Some(factor_union(remainders))
        };
        let combined = match (factored, some_empty) {
            (Some(t), false) => order_concat(shared, t, dir),
            (Some(t), true) => order_concat(shared, Regex::optional(t), dir),
            (None, _) => shared,
        };
        alts.push(combined);
    }
    Some(if alts.len() == 1 {
        alts.pop().expect("one")
    } else {
        Regex::union(alts)
    })
}

fn order_concat(shared: Regex, rest: Regex, dir: Direction) -> Regex {
    match dir {
        Direction::Prefix => Regex::concat(vec![shared, rest]),
        Direction::Suffix => Regex::concat(vec![rest, shared]),
    }
}

fn edge_element(r: &Regex, dir: Direction) -> Regex {
    match (r, dir) {
        (Regex::Concat(v), Direction::Prefix) => v[0].clone(),
        (Regex::Concat(v), Direction::Suffix) => v[v.len() - 1].clone(),
        (other, _) => other.clone(),
    }
}

fn remainder(r: &Regex, dir: Direction) -> Option<Regex> {
    match (r, dir) {
        (Regex::Concat(v), Direction::Prefix) if v.len() > 1 => {
            Some(Regex::concat(v[1..].to_vec()))
        }
        (Regex::Concat(v), Direction::Suffix) if v.len() > 1 => {
            Some(Regex::concat(v[..v.len() - 1].to_vec()))
        }
        _ => None,
    }
}

fn canon_key(r: &Regex) -> String {
    format!("{r:?}")
}

/// Module 3 helper: MDL data-encoding cost, computed by dynamic programming
/// over (subexpression, substring) pairs. The cost is the number of bits to
/// pick a derivation of the string from the expression: `log2 k` per
/// k-way union choice and one bit per continue/stop decision of `*`, `+`,
/// `?`.
struct MdlEncoder {
    budget: u64,
    used: u64,
}

impl MdlEncoder {
    fn new(budget: u64) -> Self {
        Self { budget, used: 0 }
    }

    /// Bits to encode `w` with `r`; `None` if `w ∉ L(r)`.
    fn encode(&mut self, r: &Regex, w: &Word) -> Result<Option<f64>, XtractError> {
        let mut memo: HashMap<(usize, usize, usize), Option<f64>> = HashMap::new();
        let mut nodes = Vec::new();
        collect_nodes(r, &mut nodes);
        let root = nodes.len() - 1;
        self.cost(&nodes, root, w, 0, w.len(), &mut memo)
    }

    #[allow(clippy::too_many_arguments)]
    fn cost(
        &mut self,
        nodes: &[&Regex],
        node: usize,
        w: &Word,
        i: usize,
        j: usize,
        memo: &mut HashMap<(usize, usize, usize), Option<f64>>,
    ) -> Result<Option<f64>, XtractError> {
        if let Some(&c) = memo.get(&(node, i, j)) {
            return Ok(c);
        }
        self.used += 1;
        if self.used > self.budget {
            return Err(XtractError::BudgetExhausted);
        }
        let result = match nodes[node] {
            Regex::Symbol(s) => {
                if j == i + 1 && w[i] == *s {
                    Some(0.0)
                } else {
                    None
                }
            }
            Regex::Concat(parts) => {
                // Sequential DP over the parts.
                let ids: Vec<usize> = parts.iter().map(|p| node_id(nodes, p)).collect();
                let mut frontier: HashMap<usize, f64> = HashMap::from([(i, 0.0)]);
                for &pid in &ids {
                    let mut next: HashMap<usize, f64> = HashMap::new();
                    for (&start, &bits) in &frontier.clone() {
                        for end in start..=j {
                            if let Some(c) = self.cost(nodes, pid, w, start, end, memo)? {
                                let total = bits + c;
                                next.entry(end)
                                    .and_modify(|b| *b = b.min(total))
                                    .or_insert(total);
                            }
                        }
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                frontier.get(&j).copied()
            }
            Regex::Union(parts) => {
                let choice_bits = bits_for(parts.len());
                let mut best: Option<f64> = None;
                for p in parts {
                    let pid = node_id(nodes, p);
                    if let Some(c) = self.cost(nodes, pid, w, i, j, memo)? {
                        let total = choice_bits + c;
                        best = Some(best.map_or(total, |b: f64| b.min(total)));
                    }
                }
                best
            }
            Regex::Optional(inner) => {
                let pid = node_id(nodes, inner);
                let skip: Option<f64> = if i == j { Some(1.0) } else { None };
                let take = self.cost(nodes, pid, w, i, j, memo)?.map(|c| c + 1.0);
                match (skip, take) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            }
            Regex::Plus(inner) | Regex::Star(inner) => {
                let nullable_zero = matches!(nodes[node], Regex::Star(_));
                let pid = node_id(nodes, inner);
                // iterate[k] = best bits to cover w[i..k] with ≥1 segments.
                let mut best_at: Vec<Option<f64>> = vec![None; j + 1];
                #[allow(clippy::needless_range_loop)] // index mirrors DP cell
                for end in i..=j {
                    if let Some(c) = self.cost(nodes, pid, w, i, end, memo)? {
                        best_at[end] = Some(1.0 + c);
                    }
                }
                let mut changed = true;
                while changed {
                    changed = false;
                    for mid in i..=j {
                        let Some(base) = best_at[mid] else { continue };
                        if mid == i {
                            continue; // zero-length segments would loop
                        }
                        #[allow(clippy::needless_range_loop)] // DP cell index
                        for end in mid + 1..=j {
                            if let Some(c) = self.cost(nodes, pid, w, mid, end, memo)? {
                                let total = base + 1.0 + c;
                                if best_at[end].is_none_or(|b| total < b) {
                                    best_at[end] = Some(total);
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                let covered = best_at[j].map(|b| b + 1.0); // stop bit
                if nullable_zero && i == j {
                    Some(covered.map_or(1.0, |c: f64| c.min(1.0)))
                } else {
                    covered
                }
            }
        };
        memo.insert((node, i, j), result);
        Ok(result)
    }
}

/// Collects subexpression nodes in post-order (children before parents),
/// so each node's id is its index.
fn collect_nodes<'a>(r: &'a Regex, out: &mut Vec<&'a Regex>) {
    match r {
        Regex::Symbol(_) => {}
        Regex::Concat(v) | Regex::Union(v) => {
            for p in v {
                collect_nodes(p, out);
            }
        }
        Regex::Optional(p) | Regex::Plus(p) | Regex::Star(p) => collect_nodes(p, out),
    }
    out.push(r);
}

/// Finds the node id of `target` by pointer identity scan (post-order list
/// contains every subexpression exactly once per occurrence).
fn node_id(nodes: &[&Regex], target: &Regex) -> usize {
    nodes
        .iter()
        .position(|&n| std::ptr::eq(n, target))
        .expect("subexpression present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdinfer_automata::nfa::regex_matches;
    use dtdinfer_regex::alphabet::Alphabet;
    use dtdinfer_regex::display::render;

    fn words(al: &mut Alphabet, ws: &[&str]) -> Vec<Word> {
        ws.iter().map(|w| al.word_from_chars(w)).collect()
    }

    #[test]
    fn covers_training_data() {
        let mut al = Alphabet::new();
        let ws = words(&mut al, &["abab", "ab", "cd"]);
        let r = xtract(&ws, &XtractConfig::default()).unwrap();
        for w in &ws {
            assert!(regex_matches(&r, w), "{} lost {w:?}", render(&r, &al));
        }
    }

    #[test]
    fn repeats_become_stars() {
        let mut al = Alphabet::new();
        let w = al.word_from_chars("ababab");
        let cands = generalize(&w);
        assert!(cands.len() >= 2);
        let rendered: Vec<String> = cands.iter().map(|c| render(c, &al)).collect();
        assert!(
            rendered.iter().any(|r| r.contains('*')),
            "no starred candidate in {rendered:?}"
        );
    }

    #[test]
    fn factoring_extracts_common_prefix() {
        let mut al = Alphabet::new();
        let parts = vec![
            word_regex(&al.word_from_chars("abc")),
            word_regex(&al.word_from_chars("abd")),
        ];
        let f = factor_union(parts);
        assert_eq!(render(&f, &al), "a b (c | d)");
    }

    #[test]
    fn factoring_extracts_common_suffix() {
        let mut al = Alphabet::new();
        let parts = vec![
            word_regex(&al.word_from_chars("ac")),
            word_regex(&al.word_from_chars("bc")),
        ];
        let f = factor_union(parts);
        assert_eq!(render(&f, &al), "(a | b) c");
    }

    #[test]
    fn factoring_handles_absent_tail() {
        let mut al = Alphabet::new();
        let parts = vec![
            word_regex(&al.word_from_chars("ab")),
            word_regex(&al.word_from_chars("a")),
        ];
        let f = factor_union(parts);
        assert_eq!(render(&f, &al), "a b?");
    }

    #[test]
    fn too_many_strings_crashes() {
        let mut al = Alphabet::new();
        // 1001 distinct strings.
        let a = al.intern("a");
        let b = al.intern("b");
        let ws: Vec<Word> = (0..1001)
            .map(|i| {
                let mut w = vec![a; i % 500 + 1];
                if i % 2 == 0 {
                    w.push(b);
                }
                w.push(a);
                w
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> = ws.iter().cloned().collect();
        if distinct.len() > 1000 {
            assert!(matches!(
                xtract(&ws, &XtractConfig::default()),
                Err(XtractError::TooManyStrings { .. })
            ));
        }
    }

    #[test]
    fn empty_sample_is_error() {
        assert_eq!(
            xtract(&[], &XtractConfig::default()),
            Err(XtractError::EmptySample)
        );
    }

    #[test]
    fn mdl_encoding_costs() {
        let mut al = Alphabet::new();
        let mut enc = MdlEncoder::new(1_000_000);
        // (a|b) costs 1 bit per choice.
        let r = Regex::union(vec![Regex::sym(al.intern("a")), Regex::sym(al.intern("b"))]);
        let w = al.word_from_chars("a");
        assert_eq!(enc.encode(&r, &w).unwrap(), Some(1.0));
        // a* costs k+1 continue/stop bits for k iterations.
        let star = Regex::star(Regex::sym(al.get("a").unwrap()));
        let w3 = al.word_from_chars("aaa");
        assert_eq!(enc.encode(&star, &w3).unwrap(), Some(4.0));
        let w0: Word = vec![];
        assert_eq!(enc.encode(&star, &w0).unwrap(), Some(1.0));
        // Non-member: None.
        let wb = al.word_from_chars("b");
        assert_eq!(enc.encode(&star, &wb).unwrap(), None);
    }

    #[test]
    fn mdl_prefers_star_for_heavily_repeated_data() {
        let mut al = Alphabet::new();
        // Many strings of varying numbers of a's: the starred candidate
        // explains all of them at once, the raw strings cannot.
        let ws: Vec<Word> = (1..12).map(|k| vec![al.intern("a"); k]).collect();
        let r = xtract(&ws, &XtractConfig::default()).unwrap();
        let rendered = render(&r, &al);
        assert!(rendered.contains('*'), "expected a star in {rendered}");
        for w in &ws {
            assert!(regex_matches(&r, w));
        }
    }

    #[test]
    fn disjunctive_long_winded_outputs_on_diverse_data() {
        // The paper's criticism: on diverse real-world data xtract output
        // grows with the sample, unlike SORE/CHARE inference.
        let mut al = Alphabet::new();
        let ws = words(
            &mut al,
            &["abc", "acb", "bac", "bca", "cab", "cba", "aabbcc", "ccbbaa"],
        );
        let r = xtract(&ws, &XtractConfig::default()).unwrap();
        for w in &ws {
            assert!(regex_matches(&r, w));
        }
        // Conciseness comparison: symbols occur many times.
        assert!(r.symbol_count() > 3);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut al = Alphabet::new();
        let ws = words(&mut al, &["abcabcabc", "cbacbacba", "aabbaabb"]);
        let tiny = XtractConfig {
            work_budget: 10,
            max_distinct_strings: 1000,
        };
        assert_eq!(xtract(&ws, &tiny), Err(XtractError::BudgetExhausted));
    }
}
