//! A deliberately small HTTP/1.1 server-side codec over `TcpStream`.
//!
//! The workspace is std-only, so the daemon speaks the subset of HTTP/1.1
//! its API actually needs: one request per connection (`Connection: close`
//! on everything except SSE streams), `Content-Length` bodies only (no
//! chunked transfer), headers capped at 16 KiB, bodies capped by the
//! caller's admission limit. Anything outside that subset gets a clean 4xx
//! or 5xx instead of undefined behavior.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers before we give up.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Decoded path without the query string (e.g. `/sessions/a/dtd`).
    pub path: String,
    /// Raw query string without the leading `?` (may be empty).
    pub query: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when there is none).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of a `key=value` query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Length-caps and sanitizes client-controlled text before it is echoed
/// into a response body, a metrics label, or a log line: control bytes
/// and non-ASCII are replaced with `?` and anything past 80 characters
/// is truncated with a trailing `…`, so a hostile path cannot inject
/// terminal escapes, split log lines, or bloat an error response.
pub fn clean_text(s: &str) -> String {
    const MAX_CHARS: usize = 80;
    let mut out = String::with_capacity(s.len().min(MAX_CHARS + 4));
    for (i, c) in s.chars().enumerate() {
        if i == MAX_CHARS {
            out.push('…');
            break;
        }
        out.push(if c.is_ascii_graphic() || c == ' ' {
            c
        } else {
            '?'
        });
    }
    out
}

/// Why a request could not be read. Each variant maps to one response
/// status so handlers never guess.
#[derive(Debug)]
pub enum RequestError {
    /// Connection closed or timed out before a full request arrived.
    Io(std::io::Error),
    /// The bytes are not the HTTP subset we speak (→ 400).
    Malformed(String),
    /// Declared body exceeds the admission cap (→ 413).
    TooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// Body bytes not yet read off the socket. The responder drains
        /// (discards) these before writing the 413 so the client sees
        /// the response instead of a connection reset.
        remaining: usize,
    },
    /// A feature we deliberately do not implement (→ 501).
    Unsupported(&'static str),
}

/// Reads and parses one request from `stream`. Bodies larger than
/// `max_body` are rejected *before* being read, so a hostile
/// `Content-Length` cannot make the daemon buffer it.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RequestError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Malformed("request head too large".into()));
        }
        let n = stream.read(&mut chunk).map_err(RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line missing target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Unsupported("HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(RequestError::Unsupported("chunked transfer encoding"));
    }
    let content_length: usize = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| RequestError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > max_body {
        let buffered = buf.len() - head_end - 4;
        return Err(RequestError::TooLarge {
            declared: content_length,
            remaining: content_length.saturating_sub(buffered),
        });
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    req.body = body;
    Ok(req)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and discards up to `remaining` body bytes (bounded, best
/// effort) so a rejection response is not lost to a TCP reset caused by
/// closing a socket with unread data.
pub fn drain(stream: &mut TcpStream, remaining: usize) {
    const DRAIN_CAP: usize = 16 * 1024 * 1024;
    let mut left = remaining.min(DRAIN_CAP);
    let mut chunk = [0u8; 8192];
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    while left > 0 {
        let take = chunk.len().min(left);
        match stream.read(&mut chunk[..take]) {
            Ok(0) | Err(_) => return,
            Ok(n) => left -= n,
        }
    }
}

/// One response about to be written. Everything defaults to
/// `Connection: close`; the SSE handler writes its header by hand.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":");
        dtdinfer_obs::json::write_string(&mut body, message);
        body.push('}');
        Response::json(status, body)
    }
}

/// The standard reason phrase for the statuses this daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes `response` to `stream` with `Connection: close`.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Feeds raw bytes through a real socket pair into `read_request`.
    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let got = read_request(&mut stream, max_body);
        writer.join().unwrap();
        got
    }

    #[test]
    fn parses_request_with_body_and_query() {
        let raw = b"POST /sessions/a/ingest?mode=ndxml HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n<a/>";
        let req = roundtrip(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions/a/ingest");
        assert_eq!(req.query_param("mode"), Some("ndxml"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"<a/>");
    }

    #[test]
    fn rejects_oversized_body_without_reading_it() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match roundtrip(raw, 16) {
            Err(RequestError::TooLarge { declared, .. }) => assert_eq!(declared, 999_999),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn clean_text_strips_controls_and_caps_length() {
        assert_eq!(clean_text("/sessions/a/dtd"), "/sessions/a/dtd");
        assert_eq!(
            clean_text("a\x1b[31mb\x07c"),
            "a?[31mb?c",
            "escape bytes neutered"
        );
        assert_eq!(clean_text("héllo\u{202e}"), "h?llo?", "non-ASCII replaced");
        assert_eq!(clean_text("tab\there\nline"), "tab?here?line");
        let long = "x".repeat(500);
        let cleaned = clean_text(&long);
        assert_eq!(cleaned.chars().count(), 81, "80 chars + ellipsis");
        assert!(cleaned.ends_with('…'));
    }

    #[test]
    fn rejects_chunked_and_garbage() {
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(
            roundtrip(raw, 16),
            Err(RequestError::Unsupported(_))
        ));
        assert!(matches!(
            roundtrip(b"not http at all\r\n\r\n", 16),
            Err(RequestError::Malformed(_) | RequestError::Unsupported(_))
        ));
    }
}
