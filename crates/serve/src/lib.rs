//! `dtdinfer serve` — a multi-tenant incremental schema-inference daemon.
//!
//! The paper's algorithms (iDTD's SOA rewriting, CRX's partial-order
//! summary) are incremental by construction: learner state is a
//! commutative union of per-word contributions, so schemas can be
//! maintained as data trickles in rather than re-inferred from scratch.
//! This crate turns that property into a long-lived service. Clients POST
//! documents into named **schema sessions** — isolated tenants, each a
//! warm [`EngineState`](dtdinfer_engine::EngineState) — and read back the
//! current DTD/XSD, validate documents against it, or subscribe to an SSE
//! stream of **schema-drift events** (each ingest classified
//! equal/stricter/looser/incomparable by the DFA-based schema diff).
//!
//! The daemon is std-only like the rest of the workspace: a hand-rolled
//! HTTP/1.1 codec ([`http`]), a nonblocking accept loop feeding a bounded
//! connection queue (load-shedding with 503 when full), and a small fixed
//! worker pool. Durability is snapshot + journal per session
//! ([`dtdinfer_engine::journal`]): every acknowledged ingest is journaled
//! before it is absorbed, so `kill -9` loses nothing; graceful shutdown
//! (SIGINT/SIGTERM or `POST /shutdown`) additionally compacts every dirty
//! session.
//!
//! ## API
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /sessions/{name}/ingest` | absorb one document (or NDXML batch with `?mode=ndxml`); creates the session |
//! | `GET /sessions/{name}/dtd` | current inferred DTD |
//! | `GET /sessions/{name}/xsd` | current schema as XSD |
//! | `POST /sessions/{name}/validate` | validate body against current schema (JSON witnesses) |
//! | `GET /sessions/{name}/events` | SSE drift events |
//! | `GET /sessions` | list sessions |
//! | `DELETE /sessions/{name}` | drop a session and its files |
//! | `GET /metrics` | OpenMetrics exposition (per-route/status-class labeled series) |
//! | `GET /healthz` | liveness |
//! | `GET /debug/flight` | flight-recorder ring (recent requests, spans, lifecycle) |
//! | `GET /debug/timeseries` | live sampled metrics history |
//! | `GET /debug/profile?ms=N` | on-demand critical-path profile over an N ms trace window |
//! | `POST /shutdown` | graceful shutdown |
//!
//! ## Request-scoped telemetry
//!
//! Every request gets a monotonic id and is recorded three ways: labeled
//! metric series (`serve.http.requests{route,status_class}` plus latency
//! and body-size histograms, labeled by route *template* so hostile paths
//! cannot explode label cardinality), one JSON access-log line (behind
//! `--access-log <path|->`), and an entry in the flight recorder — a
//! bounded ring that a panic hook and the graceful-shutdown path dump to
//! `<data-dir>/flight-<pid>.json`, so a crash leaves the last N requests
//! behind as evidence.

#![warn(missing_docs)]

pub mod http;
pub mod session;

use http::{clean_text, read_request, write_response, Request, RequestError, Response};
use session::{ingest_json, parse_check, split_batch, valid_name, validation_json, Session};

use dtdinfer_obs::json::{write_key, write_string};
use dtdinfer_obs::timeseries::{Sampler, SamplerConfig};
use dtdinfer_xml::infer::InferenceEngine;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything `run` needs to know, with defaults a quickstart can keep.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7700`. Port 0 picks a free port.
    pub addr: String,
    /// Directory holding per-session `<name>.snap` / `<name>.journal`.
    pub data_dir: PathBuf,
    /// Learner used to derive schemas (shared by every session).
    pub engine: InferenceEngine,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission: maximum live sessions (429 past this).
    pub max_sessions: usize,
    /// Admission: maximum request body bytes (413 past this).
    pub max_body_bytes: usize,
    /// Admission: maximum on-disk bytes per session (413 past this).
    pub max_session_bytes: u64,
    /// Journal size that triggers compaction (see `Store::wants_compaction`).
    pub compact_min_bytes: u64,
    /// Bounded connection queue depth (503 when full).
    pub queue_depth: usize,
    /// Structured JSON access log destination (`-` for stdout, `None`
    /// for no access log). One JSON object per line per request.
    pub access_log: Option<PathBuf>,
    /// Flight-recorder ring capacity: how many recent events survive
    /// into a crash dump (0 selects the recorder's default).
    pub flight_capacity: usize,
    /// Enables `POST /debug/panic`, a controlled crash drill that panics
    /// the handling worker so CI can verify the flight dump. Off by
    /// default — never enable it on an exposed address.
    pub debug_panic: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7700".to_owned(),
            data_dir: PathBuf::from("dtdinfer-data"),
            engine: InferenceEngine::Idtd,
            workers: 4,
            max_sessions: 64,
            max_body_bytes: 8 * 1024 * 1024,
            max_session_bytes: 256 * 1024 * 1024,
            compact_min_bytes: 64 * 1024,
            queue_depth: 64,
            access_log: None,
            flight_capacity: 256,
            debug_panic: false,
        }
    }
}

/// State shared by the accept loop and every worker.
struct Shared {
    config: ServeConfig,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<Session>>>>,
    /// Set by `POST /shutdown`; OS signals set [`signals::SIGNALED`].
    shutdown: AtomicBool,
    /// Queued connections with their enqueue time, so the accept-queue
    /// wait is measurable per request.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_cv: Condvar,
    /// Source of monotonic request ids (first request is 1).
    next_request_id: AtomicU64,
    /// Structured access-log sink; every line is flushed so `kill -9`
    /// keeps what was acknowledged.
    access_log: Option<Mutex<Box<dyn Write + Send>>>,
    /// Always-on background metrics sampler backing `GET /debug/timeseries`.
    sampler: Sampler,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signals::signaled()
    }
}

/// Bounded exponential backoff for the poll-accept loop. A fixed-rate
/// sleep either wastes wakeups when idle or adds latency under load; this
/// polls tightly right after activity (1 ms) and decays ×2 per empty poll
/// to a 16 ms ceiling, so an idle daemon parks most of the time while the
/// shutdown flag is still noticed within one ceiling interval.
struct AcceptBackoff {
    current: Duration,
}

impl AcceptBackoff {
    const FLOOR: Duration = Duration::from_millis(1);
    const CEIL: Duration = Duration::from_millis(16);

    fn new() -> AcceptBackoff {
        AcceptBackoff {
            current: Self::FLOOR,
        }
    }

    /// Back to the tight poll interval — call on any accepted connection.
    fn reset(&mut self) {
        self.current = Self::FLOOR;
    }

    /// Parks the calling thread for the current interval, then doubles it
    /// up to the ceiling. `park_timeout` may return early (spurious or
    /// explicit unpark) — harmless here, the loop just polls again.
    fn park(&mut self) {
        std::thread::park_timeout(self.current);
        self.current = (self.current * 2).min(Self::CEIL);
    }
}

/// OS signal plumbing: SIGINT/SIGTERM flip one process-global flag the
/// accept loop polls. Registered through the C `signal` symbol directly —
/// the workspace links libc through std anyway and takes no new crates.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        SIGNALED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the SIGINT/SIGTERM handlers (idempotent).
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn signaled() -> bool {
        SIGNALED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    /// No signal handling off unix; Ctrl-C terminates the process and the
    /// journal makes that safe.
    pub fn install() {}
    /// Always false off unix.
    pub fn signaled() -> bool {
        false
    }
}

/// Boots the daemon and blocks until shutdown. Returns the human-readable
/// reason it stopped, or an error if it could not start. `on_ready` gets
/// the actually-bound address before the first connection is accepted
/// (the CLI logs it; tests bind port 0 and need the real port).
pub fn run(config: ServeConfig, on_ready: impl FnOnce(&str)) -> Result<String, String> {
    std::fs::create_dir_all(&config.data_dir)
        .map_err(|e| format!("{}: {e}", config.data_dir.display()))?;
    // The service is its own monitoring substrate: /metrics must work even
    // when the CLI did not pass --metrics, and the flight recorder must be
    // live before the first request so a crash always leaves evidence.
    dtdinfer_obs::enable(true, dtdinfer_obs::trace_enabled());
    dtdinfer_obs::flightrec::enable(config.flight_capacity);
    dtdinfer_obs::flightrec::install_panic_hook(config.data_dir.clone());
    publish_build_info();
    let access_log = open_access_log(config.access_log.as_deref())?;
    let listener = TcpListener::bind(&config.addr).map_err(|e| format!("{}: {e}", config.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    signals::install();

    let shared = Arc::new(Shared {
        sessions: Mutex::new(BTreeMap::new()),
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        next_request_id: AtomicU64::new(0),
        access_log,
        // One point per second, ten minutes of history; the watch list is
        // empty because a daemon legitimately idles between requests.
        sampler: dtdinfer_obs::timeseries::start(SamplerConfig {
            interval: Duration::from_secs(1),
            capacity: 600,
            watch: Vec::new(),
            stall_after: 20,
            warn_on_stall: false,
        }),
        config,
    });
    recover_sessions(&shared)?;
    dtdinfer_obs::flightrec::record("lifecycle", &format!("serve listening on {local}"));
    on_ready(&local);

    let workers: Vec<_> = (0..shared.config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    // Accept loop: poll-accept so the shutdown flag is noticed promptly,
    // with bounded backoff between empty polls instead of a fixed-rate
    // spin.
    let mut backoff = AcceptBackoff::new();
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff.reset();
                dtdinfer_obs::count("serve.http.accepted", 1);
                let mut queue = shared.queue.lock().expect("queue lock");
                if queue.len() >= shared.config.queue_depth {
                    drop(queue);
                    // Load shedding: tell the client to back off instead of
                    // queueing unboundedly.
                    shed(stream);
                } else {
                    queue.push_back((stream, Instant::now()));
                    drop(queue);
                    shared.queue_cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                backoff.park();
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    shared.queue_cv.notify_all();
    for worker in workers {
        let _ = worker.join();
    }
    let flushed = flush_all(&shared);
    // Both exit paths — POST /shutdown and SIGINT/SIGTERM — land here, so
    // a terminated daemon leaves the same flight dump a panicking one
    // would.
    dtdinfer_obs::flightrec::record("lifecycle", "serve shutting down");
    if let Err(e) = dtdinfer_obs::flightrec::dump_to_dir(&shared.config.data_dir) {
        eprintln!("dtdinfer serve: flight dump failed: {e}");
    }
    Ok(format!("shutdown: {} session(s) flushed", flushed))
}

/// Opens the access-log sink: `-` is stdout, anything else appends to the
/// file (created if missing).
fn open_access_log(path: Option<&Path>) -> Result<Option<Mutex<Box<dyn Write + Send>>>, String> {
    let Some(path) = path else { return Ok(None) };
    let sink: Box<dyn Write + Send> = if path.as_os_str() == "-" {
        Box::new(std::io::stdout())
    } else {
        Box::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("access log {}: {e}", path.display()))?,
        )
    };
    Ok(Some(Mutex::new(sink)))
}

/// The conventional `dtdinfer_build_info{version="…"} 1` gauge, published
/// once at startup so every scrape identifies the running build.
fn publish_build_info() {
    dtdinfer_obs::gauge_with(
        "dtdinfer.build_info",
        &[("version", env!("CARGO_PKG_VERSION"))],
        1,
    );
}

/// Re-publishes the session-count gauge. Call wherever session-map
/// membership changes (recovery, first ingest, delete) with the map
/// locked, so the gauge never races the change it reports.
fn publish_session_gauges(sessions: &BTreeMap<String, Arc<Mutex<Session>>>) {
    dtdinfer_obs::gauge("serve.sessions", sessions.len() as u64);
}

/// Writes a one-line 503 to a connection the queue has no room for.
fn shed(mut stream: TcpStream) {
    dtdinfer_obs::count("serve.http.shed", 1);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = write_response(
        &mut stream,
        &Response::error(503, "connection queue full, retry later"),
    );
}

/// Reopens every session whose snapshot or journal survives in the data
/// dir, replaying journals (this is the restart-recovery path).
fn recover_sessions(shared: &Shared) -> Result<(), String> {
    let mut names: Vec<String> = Vec::new();
    let entries = std::fs::read_dir(&shared.config.data_dir)
        .map_err(|e| format!("{}: {e}", shared.config.data_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let (Some(stem), Some(ext)) = (
            path.file_stem().and_then(|s| s.to_str()),
            path.extension().and_then(|s| s.to_str()),
        ) else {
            continue;
        };
        if (ext == "snap" || ext == "journal")
            && valid_name(stem)
            && !names.iter().any(|n| n == stem)
        {
            names.push(stem.to_owned());
        }
    }
    let mut sessions = shared.sessions.lock().expect("sessions lock");
    for name in names {
        let (session, replayed) =
            Session::open(&shared.config.data_dir, &name, shared.config.engine)
                .map_err(|e| format!("recovering session {name:?}: {e}"))?;
        dtdinfer_obs::count("serve.session.recovered", 1);
        if replayed > 0 {
            dtdinfer_obs::count("serve.session.replayed_records", replayed);
        }
        sessions.insert(name, Arc::new(Mutex::new(session)));
    }
    publish_session_gauges(&sessions);
    Ok(())
}

/// Compacts every dirty session (graceful-shutdown flush). Returns how
/// many sessions were written.
fn flush_all(shared: &Shared) -> u64 {
    let sessions = shared.sessions.lock().expect("sessions lock");
    let mut flushed = 0;
    for (name, session) in sessions.iter() {
        let mut session = session.lock().expect("session lock");
        match session.flush() {
            Ok(true) => flushed += 1,
            Ok(false) => {}
            Err(e) => eprintln!("dtdinfer serve: flushing session {name:?}: {e}"),
        }
        // Tell subscribers the stream is over before the socket drops.
        session.broadcast("event: shutdown\ndata: {}\n\n");
    }
    flushed
}

/// One worker: pop connections until shutdown and the queue is drained.
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutting_down() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = guard;
            }
        };
        let Some((mut stream, enqueued)) = stream else {
            return;
        };
        let queue_wait_ns = u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        dtdinfer_obs::observe("serve.http.queue_wait_ns", queue_wait_ns);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        handle_connection(shared, &mut stream, queue_wait_ns);
    }
}

/// Everything the access log and the labeled metrics need to know about
/// one finished request.
struct RequestRecord {
    id: u64,
    method: String,
    path: String,
    /// Route template from the fixed routing table (`/sessions/{name}/…`)
    /// — never the raw path, so label cardinality stays bounded.
    template: &'static str,
    session: Option<String>,
    status: u16,
    bytes_in: u64,
    bytes_out: u64,
    queue_wait_ns: u64,
}

/// The status-class label value (`2xx` … `5xx`).
fn status_class(status: u16) -> &'static str {
    match status / 100 {
        1 => "1xx",
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        5 => "5xx",
        _ => "other",
    }
}

/// Publishes one finished request everywhere it is observed: labeled
/// metric series, the structured access log, and the flight recorder.
fn finish(shared: &Shared, record: &RequestRecord, started: Instant) {
    let duration_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let class = status_class(record.status);
    let labels = [("route", record.template), ("status_class", class)];
    dtdinfer_obs::count_with("serve.http.requests", &labels, 1);
    dtdinfer_obs::observe_with("serve.http.request_ns", &labels, duration_ns);
    let route_only = [("route", record.template)];
    dtdinfer_obs::observe_with("serve.http.bytes_in", &route_only, record.bytes_in);
    dtdinfer_obs::observe_with("serve.http.bytes_out", &route_only, record.bytes_out);
    dtdinfer_obs::count_labeled("serve.http.status", &record.status.to_string(), 1);
    let line = access_line(record, duration_ns);
    dtdinfer_obs::flightrec::record("access", &line);
    if let Some(log) = &shared.access_log {
        let mut log = log.lock().expect("access log lock");
        let _ = writeln!(log, "{line}");
        let _ = log.flush();
    }
}

/// One access-log line: a single JSON object (see README for the field
/// table). The raw path is sanitized; the route template is from the
/// routing table and needs no escaping beyond JSON's.
fn access_line(record: &RequestRecord, duration_ns: u64) -> String {
    let mut out = String::from("{");
    write_key(&mut out, "ts_ms");
    out.push_str(&dtdinfer_obs::flightrec::now_unix_ms().to_string());
    out.push(',');
    write_key(&mut out, "id");
    out.push_str(&record.id.to_string());
    out.push(',');
    write_key(&mut out, "method");
    write_string(&mut out, &clean_text(&record.method));
    out.push(',');
    write_key(&mut out, "route");
    write_string(&mut out, record.template);
    out.push(',');
    write_key(&mut out, "path");
    write_string(&mut out, &clean_text(&record.path));
    out.push(',');
    write_key(&mut out, "status");
    out.push_str(&record.status.to_string());
    out.push(',');
    write_key(&mut out, "bytes_in");
    out.push_str(&record.bytes_in.to_string());
    out.push(',');
    write_key(&mut out, "bytes_out");
    out.push_str(&record.bytes_out.to_string());
    out.push(',');
    write_key(&mut out, "duration_us");
    out.push_str(&(duration_ns / 1_000).to_string());
    out.push(',');
    write_key(&mut out, "queue_wait_us");
    out.push_str(&(record.queue_wait_ns / 1_000).to_string());
    out.push(',');
    write_key(&mut out, "session");
    match &record.session {
        Some(name) => write_string(&mut out, name),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Reads one request, routes it, writes the response, and records the
/// whole exchange (labeled metrics + access log + flight ring). SSE
/// subscriptions adopt the stream and are recorded as status 200 with
/// zero response bytes.
fn handle_connection(shared: &Shared, stream: &mut TcpStream, queue_wait_ns: u64) {
    let id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    let started = Instant::now();
    let _request_span = dtdinfer_obs::span("serve.request");
    let request = match read_request(stream, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            let response = match e {
                RequestError::Io(_) => {
                    // Client went away before sending a request; nothing
                    // to say and nothing worth an access-log line.
                    dtdinfer_obs::count("serve.http.aborted", 1);
                    return;
                }
                RequestError::Malformed(m) => Response::error(400, &m),
                RequestError::TooLarge {
                    declared,
                    remaining,
                } => {
                    dtdinfer_obs::count("serve.admission.body_bytes", 1);
                    http::drain(stream, remaining);
                    Response::error(
                        413,
                        &format!(
                            "body of {declared} byte(s) exceeds the {}-byte limit",
                            shared.config.max_body_bytes
                        ),
                    )
                }
                RequestError::Unsupported(what) => {
                    Response::error(501, &format!("{what} is not supported"))
                }
            };
            let record = RequestRecord {
                id,
                method: "-".to_owned(),
                path: "-".to_owned(),
                template: "{unparsed}",
                session: None,
                status: response.status,
                bytes_in: 0,
                bytes_out: response.body.len() as u64,
                queue_wait_ns,
            };
            let _ = write_response(stream, &response);
            finish(shared, &record, started);
            return;
        }
    };
    let bytes_in = request.body.len() as u64;
    let (routed, info) = route(shared, &request, stream);
    let (status, bytes_out) = match &routed {
        Routed::Response(response) => (response.status, response.body.len() as u64),
        Routed::Streaming => (200, 0),
    };
    if let Routed::Response(response) = &routed {
        let _ = write_response(stream, response);
    }
    let record = RequestRecord {
        id,
        method: request.method.clone(),
        path: request.path.clone(),
        template: info.template,
        session: info.session,
        status,
        bytes_in,
        bytes_out,
        queue_wait_ns,
    };
    finish(shared, &record, started);
}

/// What routing did with the connection.
enum Routed {
    /// Normal request/response.
    Response(Response),
    /// The socket was adopted as an SSE subscriber.
    Streaming,
}

/// What routing resolved for telemetry: the route template from the
/// fixed routing table, and the tenant when the route names one.
struct RouteInfo {
    template: &'static str,
    session: Option<String>,
}

/// Dispatches one request. `stream` is only touched by the SSE path.
fn route(shared: &Shared, req: &Request, stream: &mut TcpStream) -> (Routed, RouteInfo) {
    let path_parts: Vec<&str> = req.path.split('/').filter(|p| !p.is_empty()).collect();
    let method = req.method.as_str();
    // Every arm pins its template so metrics and the access log label by
    // the route shape, never the raw (attacker-controlled) path.
    let (response, template, session): (Response, &'static str, Option<String>) =
        match (method, path_parts.as_slice()) {
            ("GET", ["healthz"]) => (Response::text(200, "ok\n"), "/healthz", None),
            ("GET", ["metrics"]) => (
                Response {
                    status: 200,
                    content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8",
                    body: dtdinfer_obs::openmetrics::openmetrics(&dtdinfer_obs::snapshot())
                        .into_bytes(),
                },
                "/metrics",
                None,
            ),
            ("POST", ["shutdown"]) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                (
                    Response::json(200, "{\"shutting_down\":true}"),
                    "/shutdown",
                    None,
                )
            }
            ("GET", ["debug", "flight"]) => (
                Response::json(200, dtdinfer_obs::flightrec::snapshot().json()),
                "/debug/flight",
                None,
            ),
            ("GET", ["debug", "timeseries"]) => (
                Response::json(200, shared.sampler.peek().json()),
                "/debug/timeseries",
                None,
            ),
            ("GET", ["debug", "profile"]) => (debug_profile(req), "/debug/profile", None),
            ("POST", ["debug", "panic"]) if shared.config.debug_panic => {
                // Controlled crash drill (CI): unwinds this worker; the
                // panic hook dumps the flight ring on the way out.
                dtdinfer_obs::flightrec::record("lifecycle", "panic drill requested");
                panic!("panic drill requested via POST /debug/panic");
            }
            ("GET", ["sessions"]) => (list_sessions(shared), "/sessions", None),
            (_, ["sessions", name, ..]) if !valid_name(name) => (
                Response::error(
                    404,
                    &format!("invalid session name \"{}\"", clean_text(name)),
                ),
                "/sessions/{name}",
                None,
            ),
            ("POST", ["sessions", name, "ingest"]) => (
                ingest(shared, req, name),
                "/sessions/{name}/ingest",
                Some((*name).to_owned()),
            ),
            ("GET", ["sessions", name, "dtd"]) => (
                with_session(shared, name, |s| Response::text(200, s.dtd().serialize())),
                "/sessions/{name}/dtd",
                Some((*name).to_owned()),
            ),
            ("GET", ["sessions", name, "xsd"]) => (
                with_session(shared, name, |s| Response::text(200, s.xsd())),
                "/sessions/{name}/xsd",
                Some((*name).to_owned()),
            ),
            ("POST", ["sessions", name, "validate"]) => (
                validate(shared, req, name),
                "/sessions/{name}/validate",
                Some((*name).to_owned()),
            ),
            ("GET", ["sessions", name, "events"]) => {
                return (
                    subscribe(shared, name, stream),
                    RouteInfo {
                        template: "/sessions/{name}/events",
                        session: Some((*name).to_owned()),
                    },
                );
            }
            ("DELETE", ["sessions", name]) => (
                delete_session(shared, name),
                "/sessions/{name}",
                Some((*name).to_owned()),
            ),
            (_, ["sessions", ..]) => (
                Response::error(405, "method not allowed on this route"),
                "/sessions/{name}",
                None,
            ),
            _ => (
                Response::error(
                    404,
                    &format!(
                        "no route for {} {}",
                        clean_text(method),
                        clean_text(&req.path)
                    ),
                ),
                "{unmatched}",
                None,
            ),
        };
    (Routed::Response(response), RouteInfo { template, session })
}

/// `GET /debug/profile?ms=N` — on-demand critical-path profile. The trace
/// recorder is unbounded, so a daemon cannot leave tracing on forever;
/// instead this handler turns tracing on for a bounded window (default
/// 250 ms, clamped to 10..=5000), takes whatever spans the window caught,
/// and renders their critical path and per-phase stats. Concurrent
/// profile windows steal each other's spans — best-effort by design.
fn debug_profile(req: &Request) -> Response {
    let ms = req
        .query_param("ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(250)
        .clamp(10, 5_000);
    let was_tracing = dtdinfer_obs::trace_enabled();
    if !was_tracing {
        dtdinfer_obs::enable(true, true);
        // Drop anything recorded before this window opened.
        let _ = dtdinfer_obs::take_trace();
    }
    std::thread::sleep(Duration::from_millis(ms));
    let trace = dtdinfer_obs::take_trace();
    if !was_tracing {
        dtdinfer_obs::enable(true, false);
    }
    let forest = dtdinfer_obs::profile::build_forest(&trace);
    let body = format!(
        "{{\"window_ms\":{ms},\"spans\":{},\"profile\":{}}}",
        trace.len(),
        dtdinfer_obs::profile::profile_json(&forest)
    );
    Response::json(200, body)
}

/// Runs `f` on the named session, or 404s.
fn with_session(shared: &Shared, name: &str, f: impl FnOnce(&mut Session) -> Response) -> Response {
    let session = {
        let sessions = shared.sessions.lock().expect("sessions lock");
        sessions.get(name).cloned()
    };
    match session {
        Some(session) => f(&mut session.lock().expect("session lock")),
        None => Response::error(404, &format!("no session \"{}\"", clean_text(name))),
    }
}

fn list_sessions(shared: &Shared) -> Response {
    let sessions = shared.sessions.lock().expect("sessions lock");
    let mut body = String::from("{\"sessions\":[");
    for (i, session) in sessions.values().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&session.lock().expect("session lock").describe());
    }
    body.push_str("]}");
    Response::json(200, body)
}

fn delete_session(shared: &Shared, name: &str) -> Response {
    let removed = {
        let mut sessions = shared.sessions.lock().expect("sessions lock");
        let removed = sessions.remove(name);
        publish_session_gauges(&sessions);
        removed
    };
    match removed {
        Some(session) => {
            let mut session = session.lock().expect("session lock");
            session.broadcast("event: deleted\ndata: {}\n\n");
            session.subscribers.clear();
            match session.store.remove() {
                Ok(()) => Response::json(200, "{\"deleted\":true}"),
                Err(e) => Response::error(500, &e),
            }
        }
        None => Response::error(404, &format!("no session \"{}\"", clean_text(name))),
    }
}

/// `POST /sessions/{name}/ingest` — the write path. Creates the session
/// on first use (admission: session count), checks every document parses
/// (400), checks disk caps (413), then journals + absorbs + classifies.
fn ingest(shared: &Shared, req: &Request, name: &str) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let docs = split_batch(req, body);
    if docs.is_empty() {
        return Response::error(400, "no documents in request body");
    }
    for (i, doc) in docs.iter().enumerate() {
        if let Err(e) = parse_check(doc) {
            return Response::error(400, &format!("document {} does not parse: {e}", i + 1));
        }
    }
    let session = {
        let mut sessions = shared.sessions.lock().expect("sessions lock");
        match sessions.get(name) {
            Some(session) => Arc::clone(session),
            None => {
                if sessions.len() >= shared.config.max_sessions {
                    dtdinfer_obs::count("serve.admission.session_limit", 1);
                    return Response::error(
                        429,
                        &format!("session limit of {} reached", shared.config.max_sessions),
                    );
                }
                let opened = Session::open(&shared.config.data_dir, name, shared.config.engine);
                match opened {
                    Ok((session, _)) => {
                        let session = Arc::new(Mutex::new(session));
                        sessions.insert(name.to_owned(), Arc::clone(&session));
                        publish_session_gauges(&sessions);
                        session
                    }
                    Err(e) => return Response::error(500, &e),
                }
            }
        }
    };
    let mut session = session.lock().expect("session lock");
    if session.store.disk_bytes() + req.body.len() as u64 > shared.config.max_session_bytes {
        dtdinfer_obs::count("serve.admission.session_bytes", 1);
        return Response::error(
            413,
            &format!(
                "session {name:?} would exceed its {}-byte disk cap",
                shared.config.max_session_bytes
            ),
        );
    }
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    match session.ingest(&doc_refs, shared.config.compact_min_bytes) {
        Ok(outcome) => {
            dtdinfer_obs::count("serve.ingest.documents", outcome.ingested);
            Response::json(
                200,
                ingest_json(&session.name, &outcome, session.state.num_documents),
            )
        }
        Err(e) => Response::error(500, &e),
    }
}

/// `POST /sessions/{name}/validate` — validates the body against the
/// session's current schema; shares its serializer with
/// `dtdinfer validate --format json`.
fn validate(shared: &Shared, req: &Request, name: &str) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let body = body.to_owned();
    with_session(shared, name, move |session| {
        if session.state.num_documents == 0 {
            return Response::error(409, "session has no documents yet");
        }
        match session.dtd().validate_structured(&body) {
            Ok(violations) => Response::json(200, validation_json(&violations)),
            Err(e) => Response::error(400, &format!("document does not parse: {e}")),
        }
    })
}

/// `GET /sessions/{name}/events` — writes the SSE preamble and hands the
/// socket to the session's subscriber list.
fn subscribe(shared: &Shared, name: &str, stream: &mut TcpStream) -> Routed {
    let session = {
        let sessions = shared.sessions.lock().expect("sessions lock");
        sessions.get(name).cloned()
    };
    let Some(session) = session else {
        return Routed::Response(Response::error(
            404,
            &format!("no session \"{}\"", clean_text(name)),
        ));
    };
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-store\r\n\
         Connection: keep-alive\r\n\r\n: subscribed to session {name}\n\n"
    );
    let Ok(adopted) = stream.try_clone() else {
        return Routed::Response(Response::error(500, "could not retain event stream"));
    };
    // Greet and register under one session lock. Broadcasts also hold it,
    // so a concurrent ingest either lands wholly before the greeting (the
    // client has not seen the subscription yet, so it cannot have sent
    // the document that triggered it) or after the subscriber is listed —
    // the greeting can never race ahead of registration and lose the
    // first drift event.
    let mut session = session.lock().expect("session lock");
    if stream.write_all(head.as_bytes()).is_err() {
        return Routed::Streaming; // client vanished; nothing to keep
    }
    session.subscribe(adopted);
    Routed::Streaming
}

#[cfg(test)]
mod backoff_tests {
    use super::AcceptBackoff;

    #[test]
    fn accept_backoff_doubles_to_ceiling_and_resets() {
        let mut b = AcceptBackoff::new();
        assert_eq!(b.current, AcceptBackoff::FLOOR);
        let mut seen = Vec::new();
        for _ in 0..8 {
            seen.push(b.current);
            // Advance the schedule without actually parking the test.
            b.current = (b.current * 2).min(AcceptBackoff::CEIL);
        }
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "monotone: {seen:?}");
        assert_eq!(b.current, AcceptBackoff::CEIL, "bounded above");
        b.reset();
        assert_eq!(b.current, AcceptBackoff::FLOOR, "activity resets");
    }

    #[test]
    fn accept_backoff_park_is_bounded() {
        let mut b = AcceptBackoff::new();
        let started = std::time::Instant::now();
        b.park();
        // One floor-interval park, with generous scheduling slack.
        assert!(started.elapsed() < AcceptBackoff::CEIL * 20);
        assert_eq!(b.current, AcceptBackoff::FLOOR * 2);
    }
}
