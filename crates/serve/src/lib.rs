//! `dtdinfer serve` — a multi-tenant incremental schema-inference daemon.
//!
//! The paper's algorithms (iDTD's SOA rewriting, CRX's partial-order
//! summary) are incremental by construction: learner state is a
//! commutative union of per-word contributions, so schemas can be
//! maintained as data trickles in rather than re-inferred from scratch.
//! This crate turns that property into a long-lived service. Clients POST
//! documents into named **schema sessions** — isolated tenants, each a
//! warm [`EngineState`](dtdinfer_engine::EngineState) — and read back the
//! current DTD/XSD, validate documents against it, or subscribe to an SSE
//! stream of **schema-drift events** (each ingest classified
//! equal/stricter/looser/incomparable by the DFA-based schema diff).
//!
//! The daemon is std-only like the rest of the workspace: a hand-rolled
//! HTTP/1.1 codec ([`http`]), a nonblocking accept loop feeding a bounded
//! connection queue (load-shedding with 503 when full), and a small fixed
//! worker pool. Durability is snapshot + journal per session
//! ([`dtdinfer_engine::journal`]): every acknowledged ingest is journaled
//! before it is absorbed, so `kill -9` loses nothing; graceful shutdown
//! (SIGINT/SIGTERM or `POST /shutdown`) additionally compacts every dirty
//! session.
//!
//! ## API
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /sessions/{name}/ingest` | absorb one document (or NDXML batch with `?mode=ndxml`); creates the session |
//! | `GET /sessions/{name}/dtd` | current inferred DTD |
//! | `GET /sessions/{name}/xsd` | current schema as XSD |
//! | `POST /sessions/{name}/validate` | validate body against current schema (JSON witnesses) |
//! | `GET /sessions/{name}/events` | SSE drift events |
//! | `GET /sessions` | list sessions |
//! | `DELETE /sessions/{name}` | drop a session and its files |
//! | `GET /metrics` | OpenMetrics exposition |
//! | `GET /healthz` | liveness |
//! | `POST /shutdown` | graceful shutdown |

#![warn(missing_docs)]

pub mod http;
pub mod session;

use http::{read_request, write_response, Request, RequestError, Response};
use session::{ingest_json, parse_check, split_batch, valid_name, validation_json, Session};

use dtdinfer_xml::infer::InferenceEngine;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything `run` needs to know, with defaults a quickstart can keep.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7700`. Port 0 picks a free port.
    pub addr: String,
    /// Directory holding per-session `<name>.snap` / `<name>.journal`.
    pub data_dir: PathBuf,
    /// Learner used to derive schemas (shared by every session).
    pub engine: InferenceEngine,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission: maximum live sessions (429 past this).
    pub max_sessions: usize,
    /// Admission: maximum request body bytes (413 past this).
    pub max_body_bytes: usize,
    /// Admission: maximum on-disk bytes per session (413 past this).
    pub max_session_bytes: u64,
    /// Journal size that triggers compaction (see `Store::wants_compaction`).
    pub compact_min_bytes: u64,
    /// Bounded connection queue depth (503 when full).
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7700".to_owned(),
            data_dir: PathBuf::from("dtdinfer-data"),
            engine: InferenceEngine::Idtd,
            workers: 4,
            max_sessions: 64,
            max_body_bytes: 8 * 1024 * 1024,
            max_session_bytes: 256 * 1024 * 1024,
            compact_min_bytes: 64 * 1024,
            queue_depth: 64,
        }
    }
}

/// State shared by the accept loop and every worker.
struct Shared {
    config: ServeConfig,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<Session>>>>,
    /// Set by `POST /shutdown`; OS signals set [`signals::SIGNALED`].
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signals::signaled()
    }
}

/// OS signal plumbing: SIGINT/SIGTERM flip one process-global flag the
/// accept loop polls. Registered through the C `signal` symbol directly —
/// the workspace links libc through std anyway and takes no new crates.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        SIGNALED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the SIGINT/SIGTERM handlers (idempotent).
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn signaled() -> bool {
        SIGNALED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    /// No signal handling off unix; Ctrl-C terminates the process and the
    /// journal makes that safe.
    pub fn install() {}
    /// Always false off unix.
    pub fn signaled() -> bool {
        false
    }
}

/// Boots the daemon and blocks until shutdown. Returns the human-readable
/// reason it stopped, or an error if it could not start. `on_ready` gets
/// the actually-bound address before the first connection is accepted
/// (the CLI logs it; tests bind port 0 and need the real port).
pub fn run(config: ServeConfig, on_ready: impl FnOnce(&str)) -> Result<String, String> {
    std::fs::create_dir_all(&config.data_dir)
        .map_err(|e| format!("{}: {e}", config.data_dir.display()))?;
    // The service is its own monitoring substrate: /metrics must work even
    // when the CLI did not pass --metrics.
    dtdinfer_obs::enable(true, dtdinfer_obs::trace_enabled());
    let listener = TcpListener::bind(&config.addr).map_err(|e| format!("{}: {e}", config.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    signals::install();

    let shared = Arc::new(Shared {
        sessions: Mutex::new(BTreeMap::new()),
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        config,
    });
    recover_sessions(&shared)?;
    on_ready(&local);

    let workers: Vec<_> = (0..shared.config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    // Accept loop: poll-accept so the shutdown flag is noticed promptly.
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                dtdinfer_obs::count("serve.http.accepted", 1);
                let mut queue = shared.queue.lock().expect("queue lock");
                if queue.len() >= shared.config.queue_depth {
                    drop(queue);
                    // Load shedding: tell the client to back off instead of
                    // queueing unboundedly.
                    shed(stream);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.queue_cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    shared.queue_cv.notify_all();
    for worker in workers {
        let _ = worker.join();
    }
    let flushed = flush_all(&shared);
    Ok(format!("shutdown: {} session(s) flushed", flushed))
}

/// Writes a one-line 503 to a connection the queue has no room for.
fn shed(mut stream: TcpStream) {
    dtdinfer_obs::count("serve.http.shed", 1);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = write_response(
        &mut stream,
        &Response::error(503, "connection queue full, retry later"),
    );
}

/// Reopens every session whose snapshot or journal survives in the data
/// dir, replaying journals (this is the restart-recovery path).
fn recover_sessions(shared: &Shared) -> Result<(), String> {
    let mut names: Vec<String> = Vec::new();
    let entries = std::fs::read_dir(&shared.config.data_dir)
        .map_err(|e| format!("{}: {e}", shared.config.data_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let (Some(stem), Some(ext)) = (
            path.file_stem().and_then(|s| s.to_str()),
            path.extension().and_then(|s| s.to_str()),
        ) else {
            continue;
        };
        if (ext == "snap" || ext == "journal")
            && valid_name(stem)
            && !names.iter().any(|n| n == stem)
        {
            names.push(stem.to_owned());
        }
    }
    let mut sessions = shared.sessions.lock().expect("sessions lock");
    for name in names {
        let (session, replayed) =
            Session::open(&shared.config.data_dir, &name, shared.config.engine)
                .map_err(|e| format!("recovering session {name:?}: {e}"))?;
        dtdinfer_obs::count("serve.session.recovered", 1);
        if replayed > 0 {
            dtdinfer_obs::count("serve.session.replayed_records", replayed);
        }
        sessions.insert(name, Arc::new(Mutex::new(session)));
    }
    dtdinfer_obs::gauge("serve.sessions", sessions.len() as u64);
    Ok(())
}

/// Compacts every dirty session (graceful-shutdown flush). Returns how
/// many sessions were written.
fn flush_all(shared: &Shared) -> u64 {
    let sessions = shared.sessions.lock().expect("sessions lock");
    let mut flushed = 0;
    for (name, session) in sessions.iter() {
        let mut session = session.lock().expect("session lock");
        match session.flush() {
            Ok(true) => flushed += 1,
            Ok(false) => {}
            Err(e) => eprintln!("dtdinfer serve: flushing session {name:?}: {e}"),
        }
        // Tell subscribers the stream is over before the socket drops.
        session.broadcast("event: shutdown\ndata: {}\n\n");
    }
    flushed
}

/// One worker: pop connections until shutdown and the queue is drained.
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutting_down() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = guard;
            }
        };
        let Some(mut stream) = stream else { return };
        let started = Instant::now();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        handle_connection(shared, &mut stream);
        dtdinfer_obs::observe(
            "serve.http.request_ns",
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
}

/// Reads one request, routes it, writes the response. SSE subscriptions
/// consume the stream and return without writing a normal response.
fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let request = match read_request(stream, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            let response = match e {
                RequestError::Io(_) => return, // client went away; nothing to say
                RequestError::Malformed(m) => Response::error(400, &m),
                RequestError::TooLarge {
                    declared,
                    remaining,
                } => {
                    dtdinfer_obs::count("serve.admission.body_bytes", 1);
                    http::drain(stream, remaining);
                    Response::error(
                        413,
                        &format!(
                            "body of {declared} byte(s) exceeds the {}-byte limit",
                            shared.config.max_body_bytes
                        ),
                    )
                }
                RequestError::Unsupported(what) => {
                    Response::error(501, &format!("{what} is not supported"))
                }
            };
            finish(stream, response);
            return;
        }
    };
    match route(shared, &request, stream) {
        Routed::Response(response) => finish(stream, response),
        Routed::Streaming => {} // SSE took the socket
    }
}

fn finish(stream: &mut TcpStream, response: Response) {
    dtdinfer_obs::count_labeled("serve.http.status", &response.status.to_string(), 1);
    let _ = write_response(stream, &response);
}

/// What routing did with the connection.
enum Routed {
    /// Normal request/response.
    Response(Response),
    /// The socket was adopted as an SSE subscriber.
    Streaming,
}

/// Dispatches one request. `stream` is only touched by the SSE path.
fn route(shared: &Shared, req: &Request, stream: &mut TcpStream) -> Routed {
    let path_parts: Vec<&str> = req.path.split('/').filter(|p| !p.is_empty()).collect();
    let method = req.method.as_str();
    let response = match (method, path_parts.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => Response {
            status: 200,
            content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8",
            body: dtdinfer_obs::openmetrics::openmetrics(&dtdinfer_obs::snapshot()).into_bytes(),
        },
        ("POST", ["shutdown"]) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"shutting_down\":true}")
        }
        ("GET", ["sessions"]) => list_sessions(shared),
        (_, ["sessions", name, ..]) if !valid_name(name) => {
            Response::error(404, &format!("invalid session name {name:?}"))
        }
        ("POST", ["sessions", name, "ingest"]) => ingest(shared, req, name),
        ("GET", ["sessions", name, "dtd"]) => {
            with_session(shared, name, |s| Response::text(200, s.dtd().serialize()))
        }
        ("GET", ["sessions", name, "xsd"]) => {
            with_session(shared, name, |s| Response::text(200, s.xsd()))
        }
        ("POST", ["sessions", name, "validate"]) => validate(shared, req, name),
        ("GET", ["sessions", name, "events"]) => {
            return subscribe(shared, name, stream);
        }
        ("DELETE", ["sessions", name]) => delete_session(shared, name),
        (_, ["sessions", ..]) => Response::error(405, "method not allowed on this route"),
        _ => Response::error(404, &format!("no route for {} {}", method, req.path)),
    };
    Routed::Response(response)
}

/// Runs `f` on the named session, or 404s.
fn with_session(shared: &Shared, name: &str, f: impl FnOnce(&mut Session) -> Response) -> Response {
    let session = {
        let sessions = shared.sessions.lock().expect("sessions lock");
        sessions.get(name).cloned()
    };
    match session {
        Some(session) => f(&mut session.lock().expect("session lock")),
        None => Response::error(404, &format!("no session {name:?}")),
    }
}

fn list_sessions(shared: &Shared) -> Response {
    let sessions = shared.sessions.lock().expect("sessions lock");
    let mut body = String::from("{\"sessions\":[");
    for (i, session) in sessions.values().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&session.lock().expect("session lock").describe());
    }
    body.push_str("]}");
    Response::json(200, body)
}

fn delete_session(shared: &Shared, name: &str) -> Response {
    let removed = {
        let mut sessions = shared.sessions.lock().expect("sessions lock");
        let removed = sessions.remove(name);
        dtdinfer_obs::gauge("serve.sessions", sessions.len() as u64);
        removed
    };
    match removed {
        Some(session) => {
            let mut session = session.lock().expect("session lock");
            session.broadcast("event: deleted\ndata: {}\n\n");
            session.subscribers.clear();
            match session.store.remove() {
                Ok(()) => Response::json(200, "{\"deleted\":true}"),
                Err(e) => Response::error(500, &e),
            }
        }
        None => Response::error(404, &format!("no session {name:?}")),
    }
}

/// `POST /sessions/{name}/ingest` — the write path. Creates the session
/// on first use (admission: session count), checks every document parses
/// (400), checks disk caps (413), then journals + absorbs + classifies.
fn ingest(shared: &Shared, req: &Request, name: &str) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let docs = split_batch(req, body);
    if docs.is_empty() {
        return Response::error(400, "no documents in request body");
    }
    for (i, doc) in docs.iter().enumerate() {
        if let Err(e) = parse_check(doc) {
            return Response::error(400, &format!("document {} does not parse: {e}", i + 1));
        }
    }
    let session = {
        let mut sessions = shared.sessions.lock().expect("sessions lock");
        match sessions.get(name) {
            Some(session) => Arc::clone(session),
            None => {
                if sessions.len() >= shared.config.max_sessions {
                    dtdinfer_obs::count("serve.admission.session_limit", 1);
                    return Response::error(
                        429,
                        &format!("session limit of {} reached", shared.config.max_sessions),
                    );
                }
                let opened = Session::open(&shared.config.data_dir, name, shared.config.engine);
                match opened {
                    Ok((session, _)) => {
                        let session = Arc::new(Mutex::new(session));
                        sessions.insert(name.to_owned(), Arc::clone(&session));
                        dtdinfer_obs::gauge("serve.sessions", sessions.len() as u64);
                        session
                    }
                    Err(e) => return Response::error(500, &e),
                }
            }
        }
    };
    let mut session = session.lock().expect("session lock");
    if session.store.disk_bytes() + req.body.len() as u64 > shared.config.max_session_bytes {
        dtdinfer_obs::count("serve.admission.session_bytes", 1);
        return Response::error(
            413,
            &format!(
                "session {name:?} would exceed its {}-byte disk cap",
                shared.config.max_session_bytes
            ),
        );
    }
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    match session.ingest(&doc_refs, shared.config.compact_min_bytes) {
        Ok(outcome) => {
            dtdinfer_obs::count("serve.ingest.documents", outcome.ingested);
            Response::json(
                200,
                ingest_json(&session.name, &outcome, session.state.num_documents),
            )
        }
        Err(e) => Response::error(500, &e),
    }
}

/// `POST /sessions/{name}/validate` — validates the body against the
/// session's current schema; shares its serializer with
/// `dtdinfer validate --format json`.
fn validate(shared: &Shared, req: &Request, name: &str) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let body = body.to_owned();
    with_session(shared, name, move |session| {
        if session.state.num_documents == 0 {
            return Response::error(409, "session has no documents yet");
        }
        match session.dtd().validate_structured(&body) {
            Ok(violations) => Response::json(200, validation_json(&violations)),
            Err(e) => Response::error(400, &format!("document does not parse: {e}")),
        }
    })
}

/// `GET /sessions/{name}/events` — writes the SSE preamble and hands the
/// socket to the session's subscriber list.
fn subscribe(shared: &Shared, name: &str, stream: &mut TcpStream) -> Routed {
    let session = {
        let sessions = shared.sessions.lock().expect("sessions lock");
        sessions.get(name).cloned()
    };
    let Some(session) = session else {
        return Routed::Response(Response::error(404, &format!("no session {name:?}")));
    };
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-store\r\n\
         Connection: keep-alive\r\n\r\n: subscribed to session {name}\n\n"
    );
    if stream.write_all(head.as_bytes()).is_err() {
        return Routed::Streaming; // client vanished; nothing to keep
    }
    let Ok(adopted) = stream.try_clone() else {
        return Routed::Response(Response::error(500, "could not retain event stream"));
    };
    session.lock().expect("session lock").subscribe(adopted);
    Routed::Streaming
}
