//! One schema session: a named, journaled, warm incremental engine state.
//!
//! A session is the daemon's unit of tenancy. Each wraps an
//! [`EngineState`] (the paper's compact learner state — SOA, CRX summary,
//! and reservoirs, no raw corpus) plus a [`Store`] whose snapshot and
//! journal make every acknowledged ingest durable: the journal record is
//! flushed to the OS *before* the document is absorbed, so a `kill -9`
//! after the HTTP 200 never loses data. Derived DTDs are cached and
//! invalidated on ingest; each ingest request is classified against the
//! previous schema with the DFA-based diff and broadcast to SSE
//! subscribers as one drift event.

use crate::http;
use dtdinfer_engine::journal::Store;
use dtdinfer_engine::EngineState;
use dtdinfer_obs::json::{write_key, write_string};
use dtdinfer_xml::diff::{diff, ElementDiff, Relation};
use dtdinfer_xml::dtd::Dtd;
use dtdinfer_xml::infer::InferenceEngine;
use dtdinfer_xml::parser::XmlPullParser;
use dtdinfer_xml::xsd::{generate_xsd, XsdOptions};
use std::io::Write;
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// How an ingest request moved a session's schema, as one word. The
/// per-element [`Relation`]s are folded: any incomparable element (or
/// movement in both directions) makes the whole step incomparable; an
/// element disappearing is stricter; one appearing is looser.
pub fn classify_drift(diffs: &[ElementDiff]) -> &'static str {
    let mut stricter = false;
    let mut looser = false;
    for d in diffs {
        match d.relation {
            Relation::Equal => {}
            Relation::Stricter | Relation::OnlyInFirst => stricter = true,
            Relation::Looser | Relation::OnlyInSecond => looser = true,
            Relation::Incomparable => return "incomparable",
        }
    }
    match (stricter, looser) {
        (true, true) => "incomparable",
        (true, false) => "stricter",
        (false, true) => "looser",
        (false, false) => "equal",
    }
}

/// Checks that `doc` parses end to end *without* touching engine state.
///
/// `EngineState::absorb_document` mutates the state as it streams, so a
/// document that fails mid-parse would leave a half-absorbed poisoned
/// session. Ingest therefore dry-runs the zero-copy parser first and only
/// journals + absorbs documents that are known to parse.
pub fn parse_check(doc: &str) -> Result<(), String> {
    let mut parser = XmlPullParser::new(doc);
    loop {
        match parser.next() {
            Ok(Some(_)) => {}
            Ok(None) => return Ok(()),
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// The outcome of one ingest request, for the response body and the
/// drift event.
pub struct IngestOutcome {
    /// Documents absorbed by this request.
    pub ingested: u64,
    /// The drift classification word.
    pub relation: &'static str,
    /// Per-element changes (non-equal relations only).
    pub changed: Vec<ElementDiff>,
    /// Event sequence number assigned to this ingest.
    pub seq: u64,
}

/// A named schema session.
pub struct Session {
    /// The session name (validated `[A-Za-z0-9_-]{1,64}`).
    pub name: String,
    /// The warm incremental engine state.
    pub state: EngineState,
    /// Snapshot + journal persistence.
    pub store: Store,
    /// Which learner derives the schema.
    pub engine: InferenceEngine,
    /// Cached derivation, invalidated on ingest.
    cached_dtd: Option<Dtd>,
    /// Open SSE subscriber streams; dead ones are dropped on write error.
    pub subscribers: Vec<TcpStream>,
    /// Monotone event sequence for SSE `id:` lines.
    pub event_seq: u64,
}

impl Session {
    /// Opens the session named `name` under `dir`: recovers snapshot +
    /// journal when backing files exist, otherwise starts empty. Returns
    /// the session and how many journal records were replayed.
    pub fn open(dir: &Path, name: &str, engine: InferenceEngine) -> Result<(Session, u64), String> {
        let mut store = Store::new(dir, name);
        let (state, replayed) = if store.exists() {
            let recovered = store.recover()?;
            (recovered.state, recovered.replayed)
        } else {
            (EngineState::new(), 0)
        };
        Ok((
            Session {
                name: name.to_owned(),
                state,
                store,
                engine,
                cached_dtd: None,
                subscribers: Vec::new(),
                event_seq: 0,
            },
            replayed,
        ))
    }

    /// The current derived DTD (cached until the next ingest).
    pub fn dtd(&mut self) -> &Dtd {
        if self.cached_dtd.is_none() {
            let (dtd, _) = self.state.derive(self.engine);
            self.cached_dtd = Some(dtd);
        }
        self.cached_dtd.as_ref().expect("just derived")
    }

    /// The current schema as an XSD (same rendering as
    /// `dtdinfer infer --xsd --jobs N`).
    pub fn xsd(&mut self) -> String {
        let facts = self.state.facts_corpus();
        let dtd = self.dtd().clone();
        generate_xsd(
            &dtd,
            Some(&facts),
            XsdOptions {
                numeric_threshold: None,
            },
        )
    }

    /// Whether the session holds journaled state a shutdown flush should
    /// compact into a fresh snapshot.
    pub fn dirty(&self) -> bool {
        self.store.journal_records() > 0
    }

    /// Ingests a batch of pre-parse-checked documents: journal first (one
    /// record per document, durable before the HTTP 200), then absorb,
    /// then classify the schema movement and broadcast one drift event.
    /// Compacts afterwards when the journal has outgrown the snapshot.
    pub fn ingest(
        &mut self,
        docs: &[&str],
        compact_min_bytes: u64,
    ) -> Result<IngestOutcome, String> {
        let before = self.dtd().clone();
        for doc in docs {
            self.store.append(doc, self.state.num_documents)?;
            self.state
                .absorb_document(doc)
                .map_err(|e| format!("absorb failed after parse check: {e}"))?;
        }
        self.cached_dtd = None;
        let after = self.dtd().clone();
        let diffs = diff(&before, &after);
        let relation = classify_drift(&diffs);
        let changed: Vec<ElementDiff> = diffs
            .into_iter()
            .filter(|d| d.relation != Relation::Equal)
            .collect();
        self.event_seq += 1;
        let outcome = IngestOutcome {
            ingested: docs.len() as u64,
            relation,
            changed,
            seq: self.event_seq,
        };
        self.broadcast(&drift_event(&self.name, &outcome, self.state.num_documents));
        if self.store.wants_compaction(compact_min_bytes) {
            self.store.compact(&self.state)?;
        }
        dtdinfer_obs::gauge_with(
            "serve.session.documents",
            &[("session", self.name.as_str())],
            self.state.num_documents,
        );
        dtdinfer_obs::gauge_with(
            "serve.session.disk_bytes",
            &[("session", self.name.as_str())],
            self.store.disk_bytes(),
        );
        Ok(outcome)
    }

    /// Flushes journaled state into a fresh snapshot (graceful-shutdown
    /// path). Returns whether anything was written.
    pub fn flush(&mut self) -> Result<bool, String> {
        if !self.dirty() {
            return Ok(false);
        }
        self.store.compact(&self.state)?;
        Ok(true)
    }

    /// Adopts `stream` as an SSE subscriber (the HTTP response head and
    /// greeting have already been written).
    pub fn subscribe(&mut self, stream: TcpStream) {
        // A dead or glacial subscriber must not stall ingest for everyone
        // else in the session: bound each event write.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
        self.subscribers.push(stream);
        dtdinfer_obs::count("serve.sse.subscribed", 1);
    }

    /// Writes one pre-rendered SSE frame to every subscriber, dropping
    /// the ones whose sockets have died.
    pub fn broadcast(&mut self, frame: &str) {
        if self.subscribers.is_empty() {
            return;
        }
        let mut kept = Vec::with_capacity(self.subscribers.len());
        for mut stream in self.subscribers.drain(..) {
            let ok = stream.write_all(frame.as_bytes()).is_ok() && stream.flush().is_ok();
            if ok {
                kept.push(stream);
            } else {
                dtdinfer_obs::count("serve.sse.dropped", 1);
            }
        }
        dtdinfer_obs::count("serve.sse.events", 1);
        self.subscribers = kept;
    }

    /// One row of the `GET /sessions` listing.
    pub fn describe(&self) -> String {
        let mut out = String::from("{");
        write_key(&mut out, "name");
        write_string(&mut out, &self.name);
        out.push(',');
        write_key(&mut out, "documents");
        out.push_str(&self.state.num_documents.to_string());
        out.push(',');
        write_key(&mut out, "disk_bytes");
        out.push_str(&self.store.disk_bytes().to_string());
        out.push(',');
        write_key(&mut out, "journal_records");
        out.push_str(&self.store.journal_records().to_string());
        out.push(',');
        write_key(&mut out, "subscribers");
        out.push_str(&self.subscribers.len().to_string());
        out.push('}');
        out
    }
}

/// Renders the JSON payload shared by the ingest response body and the
/// SSE drift event.
pub fn ingest_json(name: &str, outcome: &IngestOutcome, documents: u64) -> String {
    let mut out = String::from("{");
    write_key(&mut out, "session");
    write_string(&mut out, name);
    out.push(',');
    write_key(&mut out, "seq");
    out.push_str(&outcome.seq.to_string());
    out.push(',');
    write_key(&mut out, "ingested");
    out.push_str(&outcome.ingested.to_string());
    out.push(',');
    write_key(&mut out, "documents");
    out.push_str(&documents.to_string());
    out.push(',');
    write_key(&mut out, "relation");
    write_string(&mut out, outcome.relation);
    out.push(',');
    write_key(&mut out, "changed");
    out.push('[');
    for (i, d) in outcome.changed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        write_key(&mut out, "element");
        write_string(&mut out, &d.name);
        out.push(',');
        write_key(&mut out, "relation");
        write_string(&mut out, &relation_word(d.relation));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// The wire word for a per-element relation (kebab-case, no spaces).
fn relation_word(r: Relation) -> String {
    match r {
        Relation::OnlyInFirst => "removed".to_owned(),
        Relation::OnlyInSecond => "added".to_owned(),
        other => other.to_string(),
    }
}

/// One SSE frame for a drift event.
pub fn drift_event(name: &str, outcome: &IngestOutcome, documents: u64) -> String {
    format!(
        "event: drift\nid: {}\ndata: {}\n\n",
        outcome.seq,
        ingest_json(name, outcome, documents)
    )
}

/// Renders the validation endpoint / CLI JSON envelope around the shared
/// `violations_json` serializer.
pub fn validation_json(violations: &[dtdinfer_xml::dtd::Violation]) -> String {
    let mut out = String::from("{");
    write_key(&mut out, "valid");
    out.push_str(if violations.is_empty() {
        "true"
    } else {
        "false"
    });
    out.push(',');
    write_key(&mut out, "violations");
    out.push_str(&dtdinfer_xml::dtd::violations_json(violations));
    out.push('}');
    out
}

/// Splits an ingest body into documents: one document per request by
/// default, newline-delimited XML (one complete document per non-empty
/// line) when the request says so.
pub fn split_batch(req: &http::Request, body: &str) -> Vec<String> {
    let ndxml = req.query_param("mode") == Some("ndxml")
        || req
            .header("content-type")
            .is_some_and(|v| v.to_ascii_lowercase().contains("ndxml"));
    if ndxml {
        body.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_owned)
            .collect()
    } else {
        vec![body.to_owned()]
    }
}

/// Whether `name` is a safe session name: short, nonempty, and free of
/// path separators or anything else that could escape the data dir.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(text: &str) -> Dtd {
        Dtd::parse(text).unwrap()
    }

    #[test]
    fn drift_classification_folds_relations() {
        let base = "<!ELEMENT r (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>";
        assert_eq!(classify_drift(&diff(&d(base), &d(base))), "equal");
        let loose = "<!ELEMENT r (a, b?)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>";
        assert_eq!(classify_drift(&diff(&d(base), &d(loose))), "looser");
        assert_eq!(classify_drift(&diff(&d(loose), &d(base))), "stricter");
        let other = "<!ELEMENT r (b, a)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>";
        assert_eq!(classify_drift(&diff(&d(base), &d(other))), "incomparable");
        // A new element appearing is looser; one disappearing stricter.
        let grown = "<!ELEMENT r (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>";
        assert_eq!(classify_drift(&diff(&d(base), &d(grown))), "looser");
        assert_eq!(classify_drift(&diff(&d(grown), &d(base))), "stricter");
    }

    #[test]
    fn name_validation_blocks_traversal() {
        assert!(valid_name("feed-7_a"));
        assert!(!valid_name(""));
        assert!(!valid_name("../evil"));
        assert!(!valid_name("a/b"));
        assert!(!valid_name(&"x".repeat(65)));
    }

    #[test]
    fn parse_check_rejects_without_mutating_anything() {
        assert!(parse_check("<a><b/></a>").is_ok());
        assert!(parse_check("<a><b></a>").is_err());
        assert!(parse_check("not xml").is_err());
    }

    #[test]
    fn session_ingest_journals_and_classifies() {
        let dir = std::env::temp_dir().join(format!("dtdinfer-serve-sess-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut s, replayed) = Session::open(&dir, "t", InferenceEngine::Idtd).unwrap();
        s.store.remove().unwrap();
        assert_eq!(replayed, 0);
        let out = s.ingest(&["<r><a/></r>"], u64::MAX).unwrap();
        assert_eq!(out.ingested, 1);
        assert_eq!(out.relation, "looser"); // schema grew from nothing
        assert!(s.dirty());
        let out = s.ingest(&["<r><a/></r>"], u64::MAX).unwrap();
        assert_eq!(out.relation, "equal");
        // Reopen: journal replay restores the same schema.
        let dtd = s.dtd().serialize();
        drop(s);
        let (mut again, replayed) = Session::open(&dir, "t", InferenceEngine::Idtd).unwrap();
        assert_eq!(replayed, 2);
        assert_eq!(again.dtd().serialize(), dtd);
        again.store.remove().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_compacts_and_preserves_schema() {
        let dir = std::env::temp_dir().join(format!("dtdinfer-serve-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut s, _) = Session::open(&dir, "f", InferenceEngine::Idtd).unwrap();
        s.store.remove().unwrap();
        s.ingest(&["<r><a/><b/></r>"], u64::MAX).unwrap();
        let dtd = s.dtd().serialize();
        assert!(s.flush().unwrap());
        assert!(!s.dirty());
        assert!(!s.flush().unwrap(), "second flush is a no-op");
        let (mut again, replayed) = Session::open(&dir, "f", InferenceEngine::Idtd).unwrap();
        assert_eq!(replayed, 0, "snapshot covers everything");
        assert_eq!(again.dtd().serialize(), dtd);
        again.store.remove().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
