//! End-to-end exercises of the daemon over real sockets: a server per
//! test on an ephemeral port, raw HTTP/1.1 from a hand-rolled client.
//!
//! The crash-recovery test simulates `kill -9` by copying the session's
//! on-disk snapshot + journal *without* any shutdown/flush (exactly the
//! bytes a killed process leaves behind) and booting a second daemon on
//! the copy.

use dtdinfer_serve::{run, ServeConfig};
use dtdinfer_xml::infer::InferenceEngine;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;

struct Server {
    addr: String,
    #[allow(dead_code)]
    thread: std::thread::JoinHandle<Result<String, String>>,
}

fn boot(data_dir: &Path, tweak: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: data_dir.to_owned(),
        engine: InferenceEngine::Idtd,
        workers: 2,
        ..ServeConfig::default()
    };
    tweak(&mut config);
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        run(config, move |addr| {
            tx.send(addr.to_owned()).expect("report addr");
        })
    });
    let addr = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server came up");
    Server { addr, thread }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtdinfer-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One request, one response: returns (status, body).
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    request(addr, "GET", path, "")
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    request(addr, "POST", path, body)
}

fn corpus() -> Vec<String> {
    (0..10)
        .map(|i| match i % 3 {
            0 => format!("<cat><book id=\"b{i}\"><title>t</title></book></cat>"),
            1 => "<cat><book><title>t</title><author>a</author></book></cat>".to_owned(),
            _ => "<cat><book><title>t</title></book><book><title>u</title></book></cat>".to_owned(),
        })
        .collect()
}

#[test]
fn ingest_then_dtd_matches_sequential_inference() {
    let dir = scratch("dtd");
    let server = boot(&dir, |_| {});
    for doc in corpus() {
        let (status, body) = post(&server.addr, "/sessions/cat/ingest", &doc);
        assert_eq!(status, 200, "{body}");
    }
    let (status, served) = get(&server.addr, "/sessions/cat/dtd");
    assert_eq!(status, 200);
    // The reference: the same corpus through the engine directly.
    let mut state = dtdinfer_engine::EngineState::new();
    for doc in corpus() {
        state.absorb_document(&doc).unwrap();
    }
    let (dtd, _) = state.derive(InferenceEngine::Idtd);
    assert_eq!(served, dtd.serialize());
    // XSD endpoint renders too.
    let (status, xsd) = get(&server.addr, "/sessions/cat/xsd");
    assert_eq!(status, 200);
    assert!(xsd.contains("xs:schema"), "{xsd}");
    post(&server.addr, "/shutdown", "");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ndxml_batch_ingest_and_listing() {
    let dir = scratch("batch");
    let server = boot(&dir, |_| {});
    let batch = corpus().join("\n");
    let (status, body) = post(&server.addr, "/sessions/b/ingest?mode=ndxml", &batch);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ingested\":10"), "{body}");
    let (status, listing) = get(&server.addr, "/sessions");
    assert_eq!(status, 200);
    assert!(listing.contains("\"name\":\"b\""), "{listing}");
    assert!(listing.contains("\"documents\":10"), "{listing}");
    // Deleting removes the session and its files.
    let (status, _) = request(&server.addr, "DELETE", "/sessions/b", "");
    assert_eq!(status, 200);
    let (status, _) = get(&server.addr, "/sessions/b/dtd");
    assert_eq!(status, 404);
    assert!(!dir.join("b.snap").exists() && !dir.join("b.journal").exists());
    post(&server.addr, "/shutdown", "");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_recovery_reproduces_schema_without_reingesting() {
    let dir = scratch("crash");
    let server = boot(&dir, |_| {});
    for doc in corpus() {
        post(&server.addr, "/sessions/s/ingest", &doc);
    }
    let (_, before) = get(&server.addr, "/sessions/s/dtd");
    // "kill -9": copy the on-disk bytes as-is — no flush, no shutdown —
    // and boot a fresh daemon on the copy.
    let crash_dir = scratch("crash-copy");
    for f in ["s.snap", "s.journal"] {
        if dir.join(f).exists() {
            std::fs::copy(dir.join(f), crash_dir.join(f)).unwrap();
        }
    }
    let revived = boot(&crash_dir, |_| {});
    let (status, after) = get(&revived.addr, "/sessions/s/dtd");
    assert_eq!(status, 200);
    assert_eq!(after, before, "recovered schema differs");
    // The revived session keeps absorbing.
    let (status, _) = post(
        &revived.addr,
        "/sessions/s/ingest",
        "<cat><book><title>t</title></book></cat>",
    );
    assert_eq!(status, 200);
    post(&server.addr, "/shutdown", "");
    post(&revived.addr, "/shutdown", "");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn graceful_shutdown_flushes_dirty_sessions() {
    let dir = scratch("flush");
    let server = boot(&dir, |c| c.compact_min_bytes = u64::MAX); // never auto-compact
    for doc in corpus().iter().take(3) {
        post(&server.addr, "/sessions/f/ingest", doc);
    }
    let (_, before) = get(&server.addr, "/sessions/f/dtd");
    let (status, _) = post(&server.addr, "/shutdown", "");
    assert_eq!(status, 200);
    let outcome = server.thread.join().unwrap().unwrap();
    assert!(outcome.contains("1 session(s) flushed"), "{outcome}");
    // The flush compacted: snapshot holds everything, journal is empty.
    let snap = std::fs::read_to_string(dir.join("f.snap")).unwrap();
    assert!(snap.contains("documents 3"), "snapshot missing documents");
    let mut store = dtdinfer_engine::journal::Store::new(&dir, "f");
    let recovered = store.recover().unwrap();
    assert_eq!(recovered.replayed, 0, "journal should be compacted away");
    let (dtd, _) = recovered.state.derive(InferenceEngine::Idtd);
    assert_eq!(dtd.serialize(), before);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sse_stream_emits_classified_drift_events() {
    let dir = scratch("sse");
    let server = boot(&dir, |_| {});
    // Create the session first (events 404 on unknown sessions).
    post(&server.addr, "/sessions/d/ingest", "<r><a/><b/></r>");
    // Subscribe.
    let mut sub = TcpStream::connect(&server.addr).unwrap();
    sub.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    sub.write_all(b"GET /sessions/d/events HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(sub.try_clone().unwrap());
    let mut line = String::new();
    // Read until the subscription greeting comment arrives.
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line.starts_with(": subscribed") {
            break;
        }
    }
    // Scripted drift: same shape → equal; drop <b/> → looser (b becomes
    // optional); a brand-new element → looser again.
    let script: &[(&str, &str)] = &[
        ("<r><a/><b/></r>", "\"relation\":\"equal\""),
        ("<r><a/></r>", "\"relation\":\"looser\""),
        ("<r><a/><c/></r>", "\"relation\":\"looser\""),
    ];
    for (doc, want) in script {
        let (status, _) = post(&server.addr, "/sessions/d/ingest", doc);
        assert_eq!(status, 200);
        // Read one SSE frame: event, id, data, blank.
        let mut event = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() && !event.is_empty() {
                break;
            }
            event.push_str(&line);
        }
        assert!(event.contains("event: drift"), "{event}");
        assert!(event.contains(want), "wanted {want} in {event}");
    }
    post(&server.addr, "/shutdown", "");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn validate_endpoint_shares_witness_serializer() {
    let dir = scratch("val");
    let server = boot(&dir, |_| {});
    // No session yet → 404; empty session → 409 is unreachable via HTTP
    // (ingest creates), so ingest then validate.
    let (status, _) = post(&server.addr, "/sessions/v/validate", "<r/>");
    assert_eq!(status, 404);
    post(&server.addr, "/sessions/v/ingest", "<r><a/><b/></r>");
    let (status, body) = post(&server.addr, "/sessions/v/validate", "<r><a/><b/></r>");
    assert_eq!(status, 200);
    assert!(body.contains("\"valid\":true"), "{body}");
    let (status, body) = post(&server.addr, "/sessions/v/validate", "<r><b/><a/></r>");
    assert_eq!(status, 200);
    assert!(body.contains("\"valid\":false"), "{body}");
    assert!(body.contains("\"kind\":\"content-model\""), "{body}");
    assert!(body.contains("\"position\":1"), "{body}");
    let (status, body) = post(&server.addr, "/sessions/v/validate", "<r><a/>");
    assert_eq!(status, 400, "unparseable doc: {body}");
    post(&server.addr, "/shutdown", "");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admission_control_and_metrics() {
    let dir = scratch("admit");
    let server = boot(&dir, |c| {
        c.max_sessions = 2;
        c.max_body_bytes = 256;
        c.max_session_bytes = 400;
    });
    // Body cap: 413 before the body is even read.
    let big = format!("<r>{}</r>", "x".repeat(1000));
    let (status, _) = post(&server.addr, "/sessions/a/ingest", &big);
    assert_eq!(status, 413);
    // Session cap: third distinct session is refused.
    assert_eq!(post(&server.addr, "/sessions/a/ingest", "<r/>").0, 200);
    assert_eq!(post(&server.addr, "/sessions/b/ingest", "<r/>").0, 200);
    let (status, body) = post(&server.addr, "/sessions/c/ingest", "<r/>");
    assert_eq!(status, 429, "{body}");
    // Per-session disk cap: keep appending to one session until 413.
    let mut saw_413 = false;
    for _ in 0..50 {
        let (status, _) = post(&server.addr, "/sessions/a/ingest", "<r><a/><b/><c/></r>");
        if status == 413 {
            saw_413 = true;
            break;
        }
        assert_eq!(status, 200);
    }
    assert!(saw_413, "disk cap never tripped");
    // Bad names and bad methods.
    assert_eq!(get(&server.addr, "/sessions/..%2Fevil/dtd").0, 404);
    assert_eq!(request(&server.addr, "PUT", "/sessions/a/dtd", "").0, 405);
    assert_eq!(get(&server.addr, "/nope").0, 404);
    // Parse failures poison nothing: 400, then the session still works.
    let (status, _) = post(&server.addr, "/sessions/b/ingest", "<r><unclosed>");
    assert_eq!(status, 400);
    assert_eq!(get(&server.addr, "/sessions/b/dtd").0, 200);
    // /metrics speaks valid OpenMetrics.
    let (status, metrics) = get(&server.addr, "/metrics");
    assert_eq!(status, 200);
    dtdinfer_obs::openmetrics::validate(&metrics)
        .unwrap_or_else(|e| panic!("omlint failed: {e}\n{metrics}"));
    assert!(metrics.contains("serve_sessions"), "{metrics}");
    post(&server.addr, "/shutdown", "");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn request_telemetry_labels_logs_and_debug_endpoints() {
    let dir = scratch("telemetry");
    let log_path = dir.join("access.log");
    let log_for_config = log_path.clone();
    let server = boot(&dir, move |c| c.access_log = Some(log_for_config));
    for doc in corpus().iter().take(3) {
        assert_eq!(post(&server.addr, "/sessions/t/ingest", doc).0, 200);
    }
    assert_eq!(get(&server.addr, "/sessions/t/dtd").0, 200);
    assert_eq!(get(&server.addr, "/definitely/not/a/route").0, 404);
    // Labeled series: per-route/status-class counters and histograms.
    let (status, metrics) = get(&server.addr, "/metrics");
    assert_eq!(status, 200);
    dtdinfer_obs::openmetrics::validate(&metrics)
        .unwrap_or_else(|e| panic!("omlint failed: {e}\n{metrics}"));
    for needle in [
        "serve_http_requests_total{route=\"/sessions/{name}/ingest\",status_class=\"2xx\"}",
        "serve_http_request_ns_count{route=\"/sessions/{name}/dtd\",status_class=\"2xx\"}",
        "serve_http_requests_total{route=\"{unmatched}\",status_class=\"4xx\"}",
        "serve_http_bytes_in_count{route=\"/sessions/{name}/ingest\"}",
        "dtdinfer_build_info{version=",
        "serve_session_documents{session=\"t\"}",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in\n{metrics}");
    }
    // Debug endpoints all serve parseable JSON.
    let (status, flight) = get(&server.addr, "/debug/flight");
    assert_eq!(status, 200);
    let flight = dtdinfer_obs::json::Value::parse(&flight).expect("flight parses");
    let events = flight
        .get("events")
        .and_then(dtdinfer_obs::json::Value::as_arr)
        .expect("events array");
    assert!(!events.is_empty(), "flight ring should hold events");
    assert!(
        events.iter().any(|e| {
            e.get("kind").and_then(dtdinfer_obs::json::Value::as_str) == Some("access")
        }),
        "flight ring records access lines"
    );
    let (status, series) = get(&server.addr, "/debug/timeseries");
    assert_eq!(status, 200);
    let series = dtdinfer_obs::json::Value::parse(&series).expect("timeseries parses");
    assert!(series.get("points").is_some(), "timeseries has points");
    let (status, profile) = get(&server.addr, "/debug/profile?ms=20");
    assert_eq!(status, 200);
    let profile = dtdinfer_obs::json::Value::parse(&profile).expect("profile parses");
    assert!(profile.get("profile").is_some(), "profile payload present");
    post(&server.addr, "/shutdown", "");
    let _ = server.thread.join();
    // Access log: one JSON object per line, ids strictly increasing.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    let mut last_id = 0u64;
    let mut lines = 0usize;
    for line in log.lines() {
        let v = dtdinfer_obs::json::Value::parse(line)
            .unwrap_or_else(|e| panic!("bad access line {line:?}: {e}"));
        for key in ["ts_ms", "id", "method", "route", "status", "duration_us"] {
            assert!(v.get(key).is_some(), "missing {key} in {line}");
        }
        let id = v
            .get("id")
            .and_then(dtdinfer_obs::json::Value::as_u64)
            .unwrap();
        assert!(id > last_id, "ids must be strictly increasing: {log}");
        last_id = id;
        lines += 1;
    }
    assert!(lines >= 6, "expected >=6 access lines, got {lines}:\n{log}");
    assert!(
        log.contains("\"route\":\"/sessions/{name}/ingest\""),
        "{log}"
    );
    assert!(log.contains("\"route\":\"{unmatched}\""), "{log}");
    // Graceful shutdown leaves the flight dump behind.
    let dump = dir.join(format!("flight-{}.json", std::process::id()));
    let body = std::fs::read_to_string(&dump).expect("shutdown flight dump");
    assert!(dtdinfer_obs::json::Value::parse(body.trim()).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hostile_paths_are_sanitized_in_error_bodies() {
    let dir = scratch("hostile");
    let server = boot(&dir, |_| {});
    // Terminal-escape injection via the request path must come back
    // neutered and length-capped in the error body.
    let (status, body) = get(&server.addr, "/\x1b[31mevil\x07/x");
    assert_eq!(status, 404);
    assert!(!body.contains('\x1b') && !body.contains('\x07'), "{body:?}");
    assert!(body.contains("?[31mevil?"), "{body}");
    let long = format!("/{}", "a".repeat(4000));
    let (status, body) = get(&server.addr, &long);
    assert_eq!(status, 404);
    assert!(
        body.len() < 300,
        "error body not capped: {} bytes",
        body.len()
    );
    assert!(body.contains('…'), "{body}");
    // Invalid session names (charset) echo sanitized too.
    let (status, body) = get(&server.addr, "/sessions/%2e%2e/dtd");
    assert_eq!(status, 404);
    assert!(body.contains("invalid session name"), "{body}");
    post(&server.addr, "/shutdown", "");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_scrape_is_consistent_under_concurrent_ingest() {
    let dir = scratch("scrape");
    let server = boot(&dir, |c| c.max_body_bytes = 64 * 1024 * 1024);
    let addr = server.addr.clone();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_scraper = std::sync::Arc::clone(&stop);
    // Scraper: hammer /metrics while ingest runs; every scrape must be a
    // valid exposition and the ingest counter must never go backwards.
    let scraper = std::thread::spawn(move || {
        let mut last = 0.0f64;
        let mut scrapes = 0usize;
        while !stop_scraper.load(std::sync::atomic::Ordering::Relaxed) {
            let (status, text) = get(&addr, "/metrics");
            assert_eq!(status, 200);
            dtdinfer_obs::openmetrics::validate(&text)
                .unwrap_or_else(|e| panic!("mid-ingest scrape invalid: {e}"));
            if let Some(line) = text
                .lines()
                .find(|l| l.starts_with("serve_ingest_documents_total "))
            {
                let v: f64 = line.split(' ').nth(1).unwrap().parse().unwrap();
                assert!(v >= last, "counter went backwards: {v} < {last}");
                last = v;
            }
            scrapes += 1;
        }
        scrapes
    });
    let batch: String = (0..200)
        .map(|i| format!("<cat><book id=\"b{i}\"><title>t</title></book></cat>"))
        .collect::<Vec<_>>()
        .join("\n");
    for _ in 0..10 {
        let (status, body) = post(&server.addr, "/sessions/big/ingest?mode=ndxml", &batch);
        assert_eq!(status, 200, "{body}");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper clean");
    assert!(scrapes > 0, "scraper never ran");
    // Final state: all 2000 documents counted and listed.
    let (_, listing) = get(&server.addr, "/sessions");
    assert!(listing.contains("\"documents\":2000"), "{listing}");
    post(&server.addr, "/shutdown", "");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panic_drill_is_recorded_and_survivable() {
    let dir = scratch("panic");
    let server = boot(&dir, |c| {
        c.debug_panic = true;
        c.workers = 3; // the drill kills one worker; others keep serving
    });
    post(&server.addr, "/sessions/p/ingest", "<r><a/></r>");
    // The drilled worker unwinds before writing a response, so the
    // connection just closes; tolerate the empty read.
    {
        let mut stream = TcpStream::connect(&server.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"POST /debug/panic HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        let _ = stream.read_to_string(&mut raw);
    }
    // The daemon survives and the flight ring holds the panic evidence.
    let (status, _) = get(&server.addr, "/healthz");
    assert_eq!(status, 200, "daemon must survive the drill");
    let (status, flight) = get(&server.addr, "/debug/flight");
    assert_eq!(status, 200);
    let flight = dtdinfer_obs::json::Value::parse(&flight).expect("flight parses");
    let events = flight
        .get("events")
        .and_then(dtdinfer_obs::json::Value::as_arr)
        .expect("events array");
    let panic_line = events
        .iter()
        .find(|e| e.get("kind").and_then(dtdinfer_obs::json::Value::as_str) == Some("panic"))
        .expect("panic event recorded");
    assert!(
        panic_line
            .get("line")
            .and_then(dtdinfer_obs::json::Value::as_str)
            .unwrap()
            .contains("panic drill"),
        "{panic_line:?}"
    );
    post(&server.addr, "/shutdown", "");
    std::fs::remove_dir_all(&dir).ok();
}
